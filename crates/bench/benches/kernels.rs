//! The batched kernel layer versus the naive per-vector paths it replaced
//! (PR 5): batched network forward, fused deep-net interval propagation,
//! and the zonotope generator matmul.
//!
//! Before any timing the setup asserts each kernel family's contract —
//! these benches double as the cheap differential gate, one gate per
//! family:
//!
//! * **Deterministic** results must be **identical** to the naive
//!   reference (`tests/kernel_equivalence.rs` is the thorough suite);
//! * **Outward** results must **contain** the Deterministic ones (interval
//!   paths) or sit inside the per-operation rounding budget (concrete
//!   paths) — `tests/kernel_rounding.rs` is the thorough suite.
//!
//! Speedup summary lines (`kernels/…: Nx`) are printed so runs can be
//! compared without post-processing; the committed trajectory lives in
//! `docs/BENCHMARKS.md`.

use covern_absint::{BoxDomain, Interval};
use covern_nn::{Activation, DenseLayer, Network};
use covern_tensor::kernels;
use covern_tensor::{Matrix, Rng};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Batch size for the forward benchmark — the acceptance bar is ≥ 64
/// points; campaign replays and B&B waves sit in this range.
const BATCH: usize = 256;

/// The historical box-transformer affine step (sign-aware `Interval`
/// accumulation per neuron), kept as the naive baseline.
fn naive_interval_affine(layer: &DenseLayer, input: &[Interval]) -> Vec<Interval> {
    let w = layer.weights();
    let mut out = Vec::with_capacity(layer.out_dim());
    for i in 0..layer.out_dim() {
        let mut acc = Interval::point(layer.bias()[i]);
        for (j, iv) in input.iter().enumerate() {
            acc = acc.add(&iv.scale(w.get(i, j)));
        }
        out.push(acc);
    }
    out
}

/// Naive whole-network interval propagation (affine + activation image),
/// without the split-weight kernels.
fn naive_box_reach(net: &Network, input: &BoxDomain) -> BoxDomain {
    let mut dims: Vec<Interval> = input.intervals().to_vec();
    for layer in net.layers() {
        let pre = naive_interval_affine(layer, &dims);
        dims = pre.iter().map(|iv| iv.monotone_image(|x| layer.activation().apply(x))).collect();
    }
    BoxDomain::new(dims)
}

/// Runs `f` with the process-global kernel mode flipped to Outward,
/// restoring Deterministic afterwards (the benches run sequentially in
/// one thread; the flip itself is a relaxed atomic store, far below the
/// µs-scale work being timed).
fn with_outward<T>(f: impl FnOnce() -> T) -> T {
    kernels::set_kernel_mode(kernels::KernelMode::Outward);
    let out = f();
    kernels::set_kernel_mode(kernels::KernelMode::Deterministic);
    out
}

fn median_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_batched_forward(c: &mut Criterion) {
    let mut rng = Rng::seeded(55_2021);
    let net =
        Network::random(&[16, 64, 64, 64, 16], Activation::Relu, Activation::Identity, &mut rng);
    let x = Matrix::from_fn(BATCH, 16, |_, _| rng.uniform(-1.0, 1.0));

    // Gate: batch rows are bit-identical to single forward passes.
    let batched = net.forward_batch(&x).expect("batch forward");
    for p in 0..BATCH {
        assert_eq!(
            batched.row(p),
            net.forward(x.row(p)).expect("single forward").as_slice(),
            "batch row {p} diverged from single forward"
        );
    }

    let mut group = c.benchmark_group("kernels");
    group.bench_function(format!("forward_naive_{BATCH}pts"), |b| {
        b.iter(|| {
            for p in 0..BATCH {
                black_box(net.forward(x.row(p)).expect("single forward"));
            }
        })
    });
    group.bench_function(format!("forward_batch_{BATCH}pts"), |b| {
        b.iter(|| black_box(net.forward_batch(&x).expect("batch forward")))
    });
    group.finish();

    // Gate (Outward): the point-blocked fast path must sit inside a
    // rounding-sized envelope of the deterministic rows before it is
    // allowed on the clock.
    let outward = with_outward(|| net.forward_batch(&x).expect("outward batch forward"));
    for p in 0..BATCH {
        for (o, d) in outward.row(p).iter().zip(batched.row(p)) {
            assert!(
                (o - d).abs() <= 1e-9 * (1.0 + d.abs()),
                "outward batch row {p} drifted beyond the rounding envelope"
            );
        }
    }
    println!("kernels/outward-forward-gate: containment ok ({BATCH} pts)");

    let mut group = c.benchmark_group("kernels");
    group.bench_function(format!("forward_batch_outward_{BATCH}pts"), |b| {
        b.iter(|| black_box(with_outward(|| net.forward_batch(&x).expect("outward forward"))))
    });
    group.finish();

    let naive = median_secs(
        || {
            for p in 0..BATCH {
                black_box(net.forward(x.row(p)).expect("single forward"));
            }
        },
        9,
    );
    let batch = median_secs(|| drop(black_box(net.forward_batch(&x).expect("batch forward"))), 9);
    let t_out = median_secs(
        || drop(black_box(with_outward(|| net.forward_batch(&x).expect("outward forward")))),
        9,
    );
    println!(
        "kernels/forward-speedup: {BATCH} pts, naive {:.1} µs, batch {:.1} µs ({:.2}x)",
        naive * 1e6,
        batch * 1e6,
        naive / batch
    );
    println!(
        "kernels/outward-forward-speedup: {BATCH} pts, deterministic {:.1} µs, outward {:.1} µs ({:.2}x)",
        batch * 1e6,
        t_out * 1e6,
        batch / t_out
    );
}

fn bench_interval_propagation(c: &mut Criterion) {
    let mut rng = Rng::seeded(56_2021);
    let dims: Vec<usize> =
        std::iter::once(8).chain(std::iter::repeat_n(48, 12)).chain([4]).collect();
    let net = Network::random(&dims, Activation::Relu, Activation::Identity, &mut rng);
    let input = BoxDomain::from_bounds(&[(-1.0, 1.0); 8]).expect("input box");

    // Gate: the fused kernel path reproduces the naive bounds exactly.
    let fused = {
        let mut b = input.clone();
        for layer in net.layers() {
            b = b.through_layer(layer).expect("fused propagation");
        }
        b
    };
    let naive = naive_box_reach(&net, &input);
    assert_eq!(fused.lower(), naive.lower(), "fused lower bounds diverged");
    assert_eq!(fused.upper(), naive.upper(), "fused upper bounds diverged");

    // Gate (Outward): the Rump-form fast path must *contain* the
    // deterministic bounds, layer for layer, before it is timed.
    let outward_box = with_outward(|| {
        let mut b = input.clone();
        for layer in net.layers() {
            b = b.through_layer(layer).expect("outward propagation");
        }
        b
    });
    for (i, (o, d)) in outward_box.intervals().iter().zip(fused.intervals()).enumerate() {
        assert!(
            o.contains_interval(d),
            "outward propagation does not contain deterministic bounds at dim {i}"
        );
    }
    println!("kernels/outward-interval-gate: containment ok ({} layers)", net.num_layers());

    let mut group = c.benchmark_group("kernels");
    group.bench_function("interval_naive_deepnet", |b| {
        b.iter(|| black_box(naive_box_reach(&net, &input)))
    });
    group.bench_function("interval_fused_deepnet", |b| {
        b.iter(|| {
            let mut bx = input.clone();
            for layer in net.layers() {
                bx = bx.through_layer(layer).expect("fused propagation");
            }
            black_box(bx)
        })
    });
    group.bench_function("interval_outward_deepnet", |b| {
        b.iter(|| {
            black_box(with_outward(|| {
                let mut bx = input.clone();
                for layer in net.layers() {
                    bx = bx.through_layer(layer).expect("outward propagation");
                }
                bx
            }))
        })
    });
    group.finish();

    let t_naive = median_secs(|| drop(black_box(naive_box_reach(&net, &input))), 15);
    let t_fused = median_secs(
        || {
            let mut bx = input.clone();
            for layer in net.layers() {
                bx = bx.through_layer(layer).expect("fused propagation");
            }
            drop(black_box(bx));
        },
        15,
    );
    let t_outward = median_secs(
        || {
            drop(black_box(with_outward(|| {
                let mut bx = input.clone();
                for layer in net.layers() {
                    bx = bx.through_layer(layer).expect("outward propagation");
                }
                bx
            })));
        },
        15,
    );
    println!(
        "kernels/interval-speedup: {} layers, naive {:.1} µs, fused {:.1} µs ({:.2}x)",
        net.num_layers(),
        t_naive * 1e6,
        t_fused * 1e6,
        t_naive / t_fused
    );
    println!(
        "kernels/outward-interval-speedup: {} layers, deterministic {:.1} µs, outward {:.1} µs ({:.2}x)",
        net.num_layers(),
        t_fused * 1e6,
        t_outward * 1e6,
        t_fused / t_outward
    );
}

/// Per-generator propagation: one matvec per generator column, the way a
/// non-batched zonotope transformer would push noise symbols through a
/// layer. Kept as the conceptual baseline for the single-matmul path.
fn per_generator_matvecs(w: &Matrix, gens: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(w.rows(), gens.cols());
    for j in 0..gens.cols() {
        let col: Vec<f64> = gens.col_iter(j).collect();
        for (i, v) in w.matvec(&col).into_iter().enumerate() {
            out.set(i, j, v);
        }
    }
    out
}

fn bench_generator_matmul(c: &mut Criterion) {
    let mut rng = Rng::seeded(57_2021);
    // Zonotope-shaped operands: a 64×64 layer acting on a 64×192 generator
    // matrix (64 box symbols + 128 accumulated ReLU symbols).
    let w = Matrix::from_fn(64, 64, |_, _| rng.uniform(-1.0, 1.0));
    let gens = Matrix::from_fn(64, 192, |_, _| rng.uniform(-1.0, 1.0));
    // Gates: the kernel agrees with both the naive triple loop (bit-exact)
    // and the per-generator matvec formulation.
    assert_eq!(kernels::matmul(&w, &gens), w.matmul(&gens), "kernel matmul diverged");
    let per_gen = per_generator_matvecs(&w, &gens);
    assert_eq!(kernels::matmul(&w, &gens), per_gen, "per-generator baseline diverged");
    // Gate (Outward): the cache-blocked matmul must stay inside the
    // per-operation rounding budget of the deterministic result — the
    // envelope the recorded-abstraction dilation convention absorbs.
    let blocked = kernels::matmul_blocked(&w, &gens);
    let absw = Matrix::from_fn(64, 64, |i, j| w.get(i, j).abs());
    let absg = Matrix::from_fn(64, 192, |i, j| gens.get(i, j).abs());
    let budget = kernels::matmul(&absw, &absg);
    let scale = kernels::outward_err_scale(64);
    for i in 0..64 {
        for j in 0..192 {
            assert!(
                (blocked.get(i, j) - per_gen.get(i, j)).abs() <= scale * (1.0 + budget.get(i, j)),
                "blocked matmul drifted beyond the rounding budget at ({i}, {j})"
            );
        }
    }
    println!("kernels/outward-generator-gate: containment ok (64x192)");

    let mut group = c.benchmark_group("kernels");
    group.bench_function("generators_per_matvec_64x192", |b| {
        b.iter(|| black_box(per_generator_matvecs(&w, &gens)))
    });
    group.bench_function("generators_matmul_64x192", |b| {
        b.iter(|| black_box(kernels::matmul(&w, &gens)))
    });
    group.bench_function("generators_blocked_64x192", |b| {
        b.iter(|| black_box(kernels::matmul_blocked(&w, &gens)))
    });
    group.finish();

    let t_naive = median_secs(|| drop(black_box(per_generator_matvecs(&w, &gens))), 9);
    let t_kernel = median_secs(|| drop(black_box(kernels::matmul(&w, &gens))), 9);
    let t_blocked = median_secs(|| drop(black_box(kernels::matmul_blocked(&w, &gens))), 9);
    println!(
        "kernels/generator-speedup: 64x64 layer, 192 generators, per-matvec {:.1} µs, matmul {:.1} µs ({:.2}x)",
        t_naive * 1e6,
        t_kernel * 1e6,
        t_naive / t_kernel
    );
    println!(
        "kernels/outward-generator-speedup: 64x64 layer, 192 generators, deterministic {:.1} µs, blocked {:.1} µs ({:.2}x)",
        t_kernel * 1e6,
        t_blocked * 1e6,
        t_kernel / t_blocked
    );
}

criterion_group!(
    benches,
    bench_batched_forward,
    bench_interval_propagation,
    bench_generator_matmul
);
criterion_main!(benches);
