//! Campaign throughput: scenario-level scaling with the worker count, and
//! the artifact cache's contribution (the ROADMAP's sharding/batching/
//! caching axis).
//!
//! Each iteration runs a fresh engine over a fixed 12-scenario corpus
//! (4 families, so 8 of 12 initial verifications are shared): the
//! `threads_*` rows show wall-clock scaling of the same verdict stream;
//! the `cache_*` rows isolate the store by running the identical corpus
//! with and without it. The cache-hit rate of the cached run is printed
//! once at startup so regressions in reuse (not just in speed) are
//! visible from bench output.

use covern_campaign::corpus::{generate, CorpusConfig};
use covern_campaign::runner::{CampaignConfig, CampaignEngine};
use criterion::{criterion_group, criterion_main, Criterion};

fn corpus_config() -> CorpusConfig {
    CorpusConfig {
        scenarios: 12,
        families: 4,
        events_per_scenario: 3,
        seed: 4242,
        include_vehicle: false,
        include_closed_loop: false,
    }
}

fn bench_campaign(c: &mut Criterion) {
    let corpus = generate(&corpus_config()).expect("corpus generates");

    // Reported once: the reuse level the threads_* rows run at.
    let probe = CampaignEngine::new(CampaignConfig::default());
    let report = probe.run(&corpus).expect("campaign runs");
    let total = report.cache.hits + report.cache.misses;
    println!(
        "campaign corpus: {} scenarios, cache {} hits / {} requests ({:.0}%)",
        report.scenarios.len(),
        report.cache.hits,
        total,
        100.0 * report.cache.hits as f64 / total.max(1) as f64
    );

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let engine =
                    CampaignEngine::new(CampaignConfig { threads, ..CampaignConfig::default() });
                engine.run(&corpus).expect("campaign runs")
            })
        });
    }
    for use_cache in [true, false] {
        group.bench_function(format!("cache_{use_cache}"), |b| {
            b.iter(|| {
                let engine = CampaignEngine::new(CampaignConfig {
                    threads: 4,
                    use_cache,
                    ..CampaignConfig::default()
                });
                engine.run(&corpus).expect("campaign runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
