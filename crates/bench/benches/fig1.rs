//! Criterion bench behind **Figure 1**: cost of the abstract transformer
//! image vs the exact (MILP) reachable bound on the two-layer prefix —
//! the trade Proposition 1 exploits.

use covern_absint::transformer::{AbstractState, DomainKind};
use covern_bench::{fig2_enlarged, fig2_network};
use covern_milp::query::max_output_neuron;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig1(c: &mut Criterion) {
    let net = fig2_network();
    let enlarged = fig2_enlarged();

    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);

    for kind in DomainKind::ALL {
        group.bench_function(format!("abstract_{kind}"), |b| {
            b.iter(|| {
                let mut s = AbstractState::from_box(kind, &enlarged);
                for layer in net.layers() {
                    s = s.through_layer(layer).expect("dims fit");
                }
                s.to_box()
            })
        });
    }
    group.bench_function("exact_milp", |b| {
        b.iter(|| max_output_neuron(&net, &enlarged, 0).expect("milp solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
