//! Ablation B (DESIGN.md §5): the abstract domain used to record the
//! state abstraction — box vs symbolic vs zonotope — and the cost of the
//! buffered-chain artifact construction at several margins.

use covern_absint::{reach_boxes, DomainKind};
use covern_bench::build_platform_case;
use covern_core::artifact::{Margin, StateAbstractionArtifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_domains(c: &mut Criterion) {
    let case = build_platform_case(0).expect("platform case builds");

    let mut group = c.benchmark_group("domains");
    group.sample_size(10);

    for kind in DomainKind::ALL {
        group.bench_function(format!("reach_{kind}"), |b| {
            b.iter(|| reach_boxes(&case.head, &case.din, kind).expect("reach runs"))
        });
    }
    for (label, margin) in [
        ("artifact_margin_none", Margin::NONE),
        ("artifact_margin_standard", Margin::standard()),
        ("artifact_margin_wide", Margin { rel: 0.2, abs: 1e-6 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                StateAbstractionArtifact::build_with_margin(
                    &case.head,
                    &case.din,
                    &case.dout,
                    DomainKind::Box,
                    margin,
                )
                .expect("artifact builds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_domains);
criterion_main!(benches);
