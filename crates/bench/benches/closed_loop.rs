//! Closed-loop reach-tube propagation: horizon sweep on the lane-keeping
//! workload, and the tube-cache ablation (cold re-verification of a
//! fine-tuned controller versus the same tube warm-started from the
//! pre-delta per-step checkpoints).
//!
//! The setup asserts — before any timing — that the safe case proves at
//! every swept horizon, that the warm run reproduces the cold canonical
//! report byte-for-byte, and that it recomputes strictly fewer controller
//! layer passes; a headline summary line (steps/layers saved, cold vs
//! warm wall clock) is printed so runs can be compared without
//! post-processing.

use covern_absint::DomainKind;
use covern_closedloop::{LoopVerifier, TubeCache};
use covern_vehicle::lateral;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

fn bench_closed_loop(c: &mut Criterion) {
    let case = lateral::safe_case();

    let mut group = c.benchmark_group("closed_loop");
    group.sample_size(10);

    // Horizon sweep: tube cost grows linearly in the horizon (one
    // controller pass + one plant step + one order reduction per step).
    for horizon in [4usize, 8, 12, 24] {
        let mut spec = case.spec.clone();
        spec.horizon = horizon;
        let verifier = LoopVerifier::new(spec, case.controller.clone(), DomainKind::Zonotope)
            .expect("lane-keeping case validates");
        let report = verifier.verify().expect("verification runs");
        assert_eq!(report.outcome, "proved", "safe case must prove at horizon {horizon}");
        group.bench_function(format!("horizon_{horizon}"), |b| {
            b.iter(|| verifier.verify().expect("verification runs"))
        });
    }

    // Tube-cache ablation: fine-tune the output layer, then re-verify
    // cold (no cache) versus warm (per-step checkpoints of the base
    // controller's tube already stored).
    let cache = Arc::new(TubeCache::new());
    let mut warm_verifier =
        LoopVerifier::new(case.spec.clone(), case.controller.clone(), DomainKind::Zonotope)
            .expect("lane-keeping case validates");
    warm_verifier.set_cache(Some(Arc::clone(&cache)));
    warm_verifier.verify().expect("base tube propagates");

    let mut tuned = case.controller.clone();
    let last = tuned.num_layers() - 1;
    tuned.layers_mut()[last].bias_mut()[0] += 1e-6;
    warm_verifier.set_controller(tuned.clone()).expect("tuned controller validates");
    let warm = warm_verifier.verify().expect("warm re-verification runs");

    let cold_verifier = LoopVerifier::new(case.spec.clone(), tuned, DomainKind::Zonotope)
        .expect("tuned case validates");
    let cold = cold_verifier.verify().expect("cold verification runs");

    // Gate: warm replays the cold tube exactly while recomputing less —
    // the property tests/closed_loop_differential.rs pins end to end.
    assert_eq!(warm.canonical(), cold.canonical(), "warm tube diverged from cold");
    assert!(
        warm.layers_computed < cold.layers_computed,
        "warm start saved nothing: warm {} vs cold {} layer passes",
        warm.layers_computed,
        cold.layers_computed
    );

    group.bench_function("fine_tune_cold", |b| {
        b.iter(|| cold_verifier.verify().expect("cold verification runs"))
    });
    group.bench_function("fine_tune_warm", |b| {
        b.iter(|| warm_verifier.verify().expect("warm re-verification runs"))
    });
    group.finish();

    // Headline numbers for docs/BENCHMARKS.md.
    let time = |v: &LoopVerifier| {
        let t0 = Instant::now();
        for _ in 0..10 {
            v.verify().expect("timed run");
        }
        t0.elapsed() / 10
    };
    let (t_cold, t_warm) = (time(&cold_verifier), time(&warm_verifier));
    println!(
        "closed_loop/fine-tune: cold {} steps + {} layer passes {:.2} ms, \
         warm {} steps + {} layer passes {:.2} ms ({:.2}x)",
        cold.steps_computed,
        cold.layers_computed,
        t_cold.as_secs_f64() * 1e3,
        warm.steps_computed,
        warm.layers_computed,
        t_warm.as_secs_f64() * 1e3,
        t_cold.as_secs_f64() / t_warm.as_secs_f64().max(1e-12),
    );
}

criterion_group!(benches, bench_closed_loop);
criterion_main!(benches);
