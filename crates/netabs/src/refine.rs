//! CEGAR-style structural refinement.
//!
//! "When the false positive happens, refinement over the structure is
//! required" (paper, Section II, describing the abstraction framework of
//! Elboher et al.). This module implements that loop for the *cover* use
//! case of Proposition 6: when a stored abstraction `f̂` fails to cover a
//! fine-tuned candidate, merge groups are split back one at a time —
//! guided by the counterexample — until the cover check passes or the
//! abstraction degenerates to the (split) original.

use crate::classify::ClassifiedNetwork;
use crate::cover::{check_cover, CoverMethod};
use crate::error::NetabsError;
use crate::merge::{apply_plan, AbstractionDirection, MergePlan};
use covern_absint::box_domain::BoxDomain;
use covern_absint::refine::Outcome;
use covern_nn::Network;

/// Result of a refinement run.
#[derive(Debug, Clone)]
pub struct RefinementResult {
    /// The refined plan (a subset of the original's merge groups).
    pub plan: MergePlan,
    /// The abstraction built from the refined plan.
    pub abstraction: Network,
    /// Outcome of the final cover check.
    pub outcome: Outcome,
    /// Number of groups split during refinement.
    pub splits: usize,
}

/// Picks the merge group to split next.
///
/// With a counterexample `witness`, the group whose merged neuron deviates
/// most from the candidate's corresponding (summed) activation at the
/// witness is chosen — the group that introduces the most abstraction
/// error where it matters. Without a witness, the largest group in the
/// earliest layer is chosen.
fn pick_group(
    classified: &ClassifiedNetwork,
    plan: &MergePlan,
    abstraction: &Network,
    candidate: &Network,
    witness: Option<&[f64]>,
) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, f64)> = None;
    if let Some(x) = witness {
        // Compare layer traces: merged neuron value vs the max of its
        // members' values in the candidate (the quantity the merge rule
        // over-approximates).
        let abs_trace = abstraction.forward_trace(x).ok()?;
        let cand_trace = candidate.forward_trace(x).ok()?;
        for (k, groups) in plan.groups().iter().enumerate() {
            for (gi, group) in groups.iter().enumerate() {
                // Merged neurons come first in the rebuilt layer, in group
                // order (see merge::apply_plan).
                let merged_val = abs_trace.get(k).and_then(|l| l.get(gi)).copied();
                let member_max = group
                    .iter()
                    .filter_map(|&i| cand_trace.get(k).and_then(|l| l.get(i)).copied())
                    .fold(f64::NEG_INFINITY, f64::max);
                if let Some(mv) = merged_val {
                    let err = (mv - member_max).abs();
                    if best.is_none_or(|(_, _, b)| err > b) {
                        best = Some((k, gi, err));
                    }
                }
            }
        }
    }
    if best.is_none() {
        // Fallback: largest group, earliest layer.
        for (k, groups) in plan.groups().iter().enumerate() {
            for (gi, group) in groups.iter().enumerate() {
                let size = group.len() as f64;
                if best.is_none_or(|(_, _, b)| size > b) {
                    best = Some((k, gi, size));
                }
            }
        }
    }
    let _ = classified;
    best.map(|(k, gi, _)| (k, gi))
}

/// Refines `plan` until the abstraction covers `candidate` on `din`, the
/// plan runs out of groups, or `max_rounds` is hit.
///
/// Monotone by construction: every round removes one merge group, so the
/// abstraction tightens strictly; with zero groups the abstraction equals
/// the class-split original, whose cover status is whatever the final
/// check says.
///
/// # Errors
///
/// Returns [`NetabsError`] if the abstraction cannot be built or compared.
pub fn refine_to_cover(
    classified: &ClassifiedNetwork,
    mut plan: MergePlan,
    direction: AbstractionDirection,
    candidate: &Network,
    din: &BoxDomain,
    method: CoverMethod,
    max_rounds: usize,
) -> Result<RefinementResult, NetabsError> {
    let mut splits = 0usize;
    loop {
        let abstraction = apply_plan(classified, &plan, direction)?;
        let outcome = check_cover(&abstraction, candidate, din, method)?;
        let witness = match &outcome {
            Outcome::Proved => {
                return Ok(RefinementResult { plan, abstraction, outcome, splits });
            }
            Outcome::Refuted(w) => Some(w.clone()),
            Outcome::Unknown => None,
        };
        if plan.num_groups() == 0 || splits >= max_rounds {
            return Ok(RefinementResult { plan, abstraction, outcome, splits });
        }
        let Some((k, gi)) =
            pick_group(classified, &plan, &abstraction, candidate, witness.as_deref())
        else {
            return Ok(RefinementResult { plan, abstraction, outcome, splits });
        };
        plan.split_group(k, gi)?;
        splits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::preprocess;
    use covern_nn::Activation;
    use covern_tensor::Rng;

    fn net(seed: u64) -> Network {
        let mut rng = Rng::seeded(seed);
        Network::random(&[2, 5, 4, 1], Activation::Relu, Activation::Identity, &mut rng)
    }

    #[test]
    fn already_covering_abstraction_needs_no_refinement() {
        let f = net(601);
        let pre = preprocess(&f).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 2]).unwrap();
        let r = refine_to_cover(
            &pre,
            plan,
            AbstractionDirection::Over,
            &f,
            &din,
            CoverMethod::Milp { node_limit: 100_000 },
            10,
        )
        .unwrap();
        assert!(r.outcome.is_proved());
        assert_eq!(r.splits, 0, "own abstraction already covers");
    }

    #[test]
    fn refinement_tightens_until_cover_or_exhaustion() {
        // Candidate slightly above the original: the coarse abstraction may
        // or may not cover it, but refinement must terminate with a sound
        // answer and a monotonically smaller plan.
        let f = net(602);
        let pre = preprocess(&f).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let initial_groups = plan.num_groups();
        let mut rng = Rng::seeded(603);
        let tuned = f.perturbed(5e-3, &mut rng);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 2]).unwrap();
        let r = refine_to_cover(
            &pre,
            plan,
            AbstractionDirection::Over,
            &tuned,
            &din,
            CoverMethod::Milp { node_limit: 100_000 },
            initial_groups + 1,
        )
        .unwrap();
        assert!(r.plan.num_groups() + r.splits == initial_groups || r.outcome.is_proved());
        if r.outcome.is_proved() {
            // Validate the final cover on samples.
            for _ in 0..100 {
                let x = [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)];
                let fa = r.abstraction.forward(&x).unwrap()[0];
                let fc = tuned.forward(&x).unwrap()[0];
                assert!(fa >= fc - 1e-6, "refined cover violated");
            }
        }
    }

    #[test]
    fn hopeless_candidate_exhausts_plan_without_false_proof() {
        // A candidate far above anything the abstraction family can cover.
        let f = net(604);
        let pre = preprocess(&f).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let mut bumped = f.clone();
        let last = bumped.num_layers() - 1;
        bumped.layers_mut()[last].bias_mut()[0] += 100.0;
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 2]).unwrap();
        let r = refine_to_cover(
            &pre,
            plan,
            AbstractionDirection::Over,
            &bumped,
            &din,
            CoverMethod::Refinement { max_splits: 50 },
            20,
        )
        .unwrap();
        assert!(!r.outcome.is_proved(), "impossible cover must not be proved");
    }

    #[test]
    fn round_budget_is_respected() {
        let f = net(605);
        let pre = preprocess(&f).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        if plan.num_groups() < 2 {
            return;
        }
        let mut bumped = f.clone();
        let last = bumped.num_layers() - 1;
        bumped.layers_mut()[last].bias_mut()[0] += 100.0;
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 2]).unwrap();
        let r = refine_to_cover(
            &pre,
            plan,
            AbstractionDirection::Over,
            &bumped,
            &din,
            CoverMethod::Refinement { max_splits: 20 },
            1,
        )
        .unwrap();
        assert!(r.splits <= 1);
    }
}
