//! Error type for structural network abstraction.

use std::error::Error;
use std::fmt;

/// Errors produced while abstracting or comparing networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetabsError {
    /// The operation requires piecewise-linear activations throughout.
    NonPiecewiseLinear(String),
    /// Networks passed to a comparison have incompatible shapes.
    IncompatibleNetworks {
        /// What was being compared.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The merge plan references a layer or neurons that do not exist, or
    /// a layer whose inputs are not provably non-negative.
    InvalidPlan(String),
}

impl fmt::Display for NetabsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetabsError::NonPiecewiseLinear(a) => {
                write!(f, "activation {a} is not piecewise linear")
            }
            NetabsError::IncompatibleNetworks { context, detail } => {
                write!(f, "incompatible networks in {context}: {detail}")
            }
            NetabsError::InvalidPlan(d) => write!(f, "invalid merge plan: {d}"),
        }
    }
}

impl Error for NetabsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        assert!(!NetabsError::InvalidPlan("x".into()).to_string().is_empty());
        assert!(!NetabsError::NonPiecewiseLinear("Sigmoid".into()).to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<NetabsError>();
    }
}
