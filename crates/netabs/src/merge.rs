//! Merging same-class neurons into a smaller, dominating network.
//!
//! For the **over** direction (`f̂ ≥ f`, the direction that preserves
//! upper-bound safety properties): increasing neurons merge with the
//! element-wise `max` of their incoming weights/biases, decreasing neurons
//! with the `min`; outgoing weights of the group are summed. Soundness
//! requires the merged layer's *inputs* to be non-negative, so only layers
//! preceded by ReLU (or another non-negative activation) participate.

use crate::classify::{ClassifiedNetwork, NeuronClass};
use crate::error::NetabsError;
use covern_nn::{Activation, DenseLayer, Network};
use covern_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which side the abstraction bounds the original from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbstractionDirection {
    /// `f̂(x) ≥ f(x)` for every input — preserves `f ≤ c` properties.
    Over,
    /// `f̂(x) ≤ f(x)` for every input — preserves `f ≥ c` properties.
    Under,
}

/// A description of which neurons merge in which layers.
///
/// `groups[k]` lists the merge groups for the outputs of `layers()[k]`
/// (0-based). Unlisted neurons stay unmerged. Layer `0` (fed by raw,
/// possibly negative inputs) and the output layer are never merged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergePlan {
    groups: Vec<Vec<Vec<usize>>>,
}

impl MergePlan {
    /// An empty plan for a network with `num_layers` layers (abstraction
    /// equals the original).
    pub fn empty(num_layers: usize) -> Self {
        Self { groups: vec![Vec::new(); num_layers] }
    }

    /// The merge groups per layer.
    pub fn groups(&self) -> &[Vec<Vec<usize>>] {
        &self.groups
    }

    /// Adds one merge group for layer `k` (0-based layer output index).
    ///
    /// # Errors
    ///
    /// Returns [`NetabsError::InvalidPlan`] if the group has fewer than two
    /// neurons or `k` is out of range.
    pub fn add_group(&mut self, k: usize, group: Vec<usize>) -> Result<(), NetabsError> {
        if k >= self.groups.len() {
            return Err(NetabsError::InvalidPlan(format!(
                "layer {k} out of range ({} layers)",
                self.groups.len()
            )));
        }
        if group.len() < 2 {
            return Err(NetabsError::InvalidPlan("merge group needs at least 2 neurons".into()));
        }
        self.groups[k].push(group);
        Ok(())
    }

    /// Total number of merge groups.
    pub fn num_groups(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Refinement: removes one merge group (layer `k`, position `idx`),
    /// restoring its neurons in the abstraction. Returns the removed group.
    ///
    /// # Errors
    ///
    /// Returns [`NetabsError::InvalidPlan`] if there is no such group.
    pub fn split_group(&mut self, k: usize, idx: usize) -> Result<Vec<usize>, NetabsError> {
        if k >= self.groups.len() || idx >= self.groups[k].len() {
            return Err(NetabsError::InvalidPlan(format!("no group {idx} in layer {k}")));
        }
        Ok(self.groups[k].remove(idx))
    }

    /// Builds a greedy plan merging same-class neuron pairs in every
    /// eligible layer until each layer has at most `target_width` neurons.
    ///
    /// Eligible layers are `1..n-1` (0-based) whose predecessor activation
    /// produces non-negative values.
    pub fn greedy(classified: &ClassifiedNetwork, target_width: usize) -> Self {
        let net = &classified.network;
        let n = net.num_layers();
        let mut plan = MergePlan::empty(n);
        for k in 1..n.saturating_sub(1) {
            if !activation_nonnegative(net.layers()[k - 1].activation()) {
                continue;
            }
            let width = net.layers()[k].out_dim();
            if width <= target_width {
                continue;
            }
            let mut excess = width - target_width;
            // Collect per-class neuron lists and merge greedily within class.
            for class in [NeuronClass::Inc, NeuronClass::Dec] {
                if excess == 0 {
                    break;
                }
                let members: Vec<usize> = classified.classes[k]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &c)| (c == class).then_some(i))
                    .collect();
                if members.len() < 2 {
                    continue;
                }
                // One big group removes members.len()-1 neurons; cap to the
                // excess we still need to remove.
                let group_size = (excess + 1).min(members.len());
                if group_size >= 2 {
                    let group: Vec<usize> = members[..group_size].to_vec();
                    excess -= group.len() - 1;
                    plan.groups[k].push(group);
                }
            }
        }
        plan
    }
}

fn activation_nonnegative(act: Activation) -> bool {
    matches!(act, Activation::Relu | Activation::Sigmoid)
}

/// Applies a merge plan to a classified network, producing the abstraction.
///
/// # Errors
///
/// Returns [`NetabsError::InvalidPlan`] if a group references unknown
/// neurons, mixes classes, targets layer 0 / the output layer, or targets a
/// layer whose inputs are not provably non-negative.
pub fn apply_plan(
    classified: &ClassifiedNetwork,
    plan: &MergePlan,
    direction: AbstractionDirection,
) -> Result<Network, NetabsError> {
    let net = &classified.network;
    let n = net.num_layers();
    if plan.groups.len() != n {
        return Err(NetabsError::InvalidPlan(format!(
            "plan has {} layers, network has {n}",
            plan.groups.len()
        )));
    }
    let mut layers: Vec<DenseLayer> = net.layers().to_vec();

    for k in 0..n {
        if plan.groups[k].is_empty() {
            continue;
        }
        if k == 0 || k == n - 1 {
            return Err(NetabsError::InvalidPlan(
                "cannot merge the first or the output layer".into(),
            ));
        }
        if !activation_nonnegative(layers[k - 1].activation()) {
            return Err(NetabsError::InvalidPlan(format!(
                "layer {k} inputs are not provably non-negative (prev activation {})",
                layers[k - 1].activation()
            )));
        }
        let width = layers[k].out_dim();
        let mut owner: Vec<Option<usize>> = vec![None; width]; // group index per neuron
        for (gi, group) in plan.groups[k].iter().enumerate() {
            let class0 = *classified.classes[k]
                .get(*group.first().ok_or_else(|| NetabsError::InvalidPlan("empty group".into()))?)
                .ok_or_else(|| NetabsError::InvalidPlan("neuron out of range".into()))?;
            for &i in group {
                if i >= width {
                    return Err(NetabsError::InvalidPlan(format!("neuron {i} out of range")));
                }
                if classified.classes[k][i] != class0 {
                    return Err(NetabsError::InvalidPlan("merge group mixes classes".into()));
                }
                if owner[i].is_some() {
                    return Err(NetabsError::InvalidPlan(format!("neuron {i} in two groups")));
                }
                owner[i] = Some(gi);
            }
        }

        // New neuron order: merged groups first (one neuron each), then the
        // untouched neurons in their original order.
        let num_groups = plan.groups[k].len();
        let untouched: Vec<usize> = (0..width).filter(|i| owner[*i].is_none()).collect();
        let new_width = num_groups + untouched.len();

        let cur = &layers[k];
        let next = &layers[k + 1];
        let mut new_w = Matrix::zeros(new_width, cur.in_dim());
        let mut new_b = vec![0.0; new_width];
        let mut new_next = Matrix::zeros(next.out_dim(), new_width);

        // Merged neurons.
        for (gi, group) in plan.groups[k].iter().enumerate() {
            let class = classified.classes[k][group[0]];
            // Over+Inc and Under+Dec take max; the other two take min.
            let take_max = matches!(
                (direction, class),
                (AbstractionDirection::Over, NeuronClass::Inc)
                    | (AbstractionDirection::Under, NeuronClass::Dec)
            );
            let combine = |a: f64, b: f64| if take_max { a.max(b) } else { a.min(b) };
            for j in 0..cur.in_dim() {
                let mut acc = cur.weights().get(group[0], j);
                for &i in &group[1..] {
                    acc = combine(acc, cur.weights().get(i, j));
                }
                new_w.set(gi, j, acc);
            }
            let mut bacc = cur.bias()[group[0]];
            for &i in &group[1..] {
                bacc = combine(bacc, cur.bias()[i]);
            }
            new_b[gi] = bacc;
            // Outgoing: sum of member columns.
            for t in 0..next.out_dim() {
                let mut s = 0.0;
                for &i in group {
                    s += next.weights().get(t, i);
                }
                new_next.set(t, gi, s);
            }
        }
        // Untouched neurons.
        for (pos, &i) in untouched.iter().enumerate() {
            let col = num_groups + pos;
            for j in 0..cur.in_dim() {
                new_w.set(col, j, cur.weights().get(i, j));
            }
            new_b[col] = cur.bias()[i];
            for t in 0..next.out_dim() {
                new_next.set(t, col, next.weights().get(t, i));
            }
        }

        let act_cur = cur.activation();
        let act_next = next.activation();
        let next_bias = next.bias().to_vec();
        layers[k] = DenseLayer::new(new_w, new_b, act_cur).expect("merged shapes agree");
        layers[k + 1] =
            DenseLayer::new(new_next, next_bias, act_next).expect("merged shapes agree");
    }

    Network::new(layers).map_err(|e| NetabsError::InvalidPlan(format!("merge broke chaining: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::preprocess;
    use covern_nn::Activation;
    use covern_tensor::Rng;

    fn deep_net(seed: u64) -> Network {
        let mut rng = Rng::seeded(seed);
        Network::random(&[2, 6, 6, 1], Activation::Relu, Activation::Identity, &mut rng)
    }

    #[test]
    fn empty_plan_is_identity() {
        let net = deep_net(1);
        let pre = preprocess(&net).unwrap();
        let plan = MergePlan::empty(pre.network.num_layers());
        let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
        assert_eq!(abs, pre.network);
    }

    #[test]
    fn over_abstraction_dominates_pointwise() {
        for seed in 0..6u64 {
            let net = deep_net(seed);
            let pre = preprocess(&net).unwrap();
            let plan = MergePlan::greedy(&pre, 2);
            if plan.num_groups() == 0 {
                continue;
            }
            let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
            let mut rng = Rng::seeded(seed + 1000);
            for _ in 0..300 {
                let x = [rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)];
                let y = net.forward(&x).unwrap()[0];
                let yh = abs.forward(&x).unwrap()[0];
                assert!(yh >= y - 1e-9, "seed {seed}: f̂ {yh} < f {y}");
            }
        }
    }

    #[test]
    fn under_abstraction_is_dominated_pointwise() {
        for seed in 0..6u64 {
            let net = deep_net(seed + 50);
            let pre = preprocess(&net).unwrap();
            let plan = MergePlan::greedy(&pre, 2);
            if plan.num_groups() == 0 {
                continue;
            }
            let abs = apply_plan(&pre, &plan, AbstractionDirection::Under).unwrap();
            let mut rng = Rng::seeded(seed + 2000);
            for _ in 0..300 {
                let x = [rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)];
                let y = net.forward(&x).unwrap()[0];
                let yh = abs.forward(&x).unwrap()[0];
                assert!(yh <= y + 1e-9, "seed {seed}: f̂ {yh} > f {y}");
            }
        }
    }

    #[test]
    fn merge_shrinks_width() {
        let net = deep_net(3);
        let pre = preprocess(&net).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
        let pre_dims = pre.network.dims();
        let abs_dims = abs.dims();
        assert!(
            abs_dims.iter().sum::<usize>() < pre_dims.iter().sum::<usize>(),
            "abstraction did not shrink: {pre_dims:?} -> {abs_dims:?}"
        );
    }

    #[test]
    fn refinement_restores_precision() {
        let net = deep_net(4);
        let pre = preprocess(&net).unwrap();
        let mut plan = MergePlan::greedy(&pre, 2);
        if plan.num_groups() == 0 {
            return;
        }
        let before = plan.num_groups();
        let layer = plan.groups().iter().position(|g| !g.is_empty()).expect("at least one group");
        plan.split_group(layer, 0).unwrap();
        assert_eq!(plan.num_groups(), before - 1);
        // Still a valid plan for apply.
        let _ = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let net = deep_net(5);
        let pre = preprocess(&net).unwrap();
        let n = pre.network.num_layers();

        let mut plan = MergePlan::empty(n);
        assert!(plan.add_group(n, vec![0, 1]).is_err()); // layer out of range
        assert!(plan.add_group(1, vec![0]).is_err()); // too small

        // Merging the first layer is rejected.
        let mut plan = MergePlan::empty(n);
        plan.add_group(0, vec![0, 1]).unwrap();
        assert!(apply_plan(&pre, &plan, AbstractionDirection::Over).is_err());

        // Mixed-class group is rejected (if both classes exist in layer 1).
        let classes = &pre.classes[1];
        let inc = classes.iter().position(|&c| c == NeuronClass::Inc);
        let dec = classes.iter().position(|&c| c == NeuronClass::Dec);
        if let (Some(i), Some(d)) = (inc, dec) {
            let mut plan = MergePlan::empty(n);
            plan.add_group(1, vec![i, d]).unwrap();
            assert!(apply_plan(&pre, &plan, AbstractionDirection::Over).is_err());
        }

        // Overlapping groups are rejected.
        let members: Vec<usize> = classes
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == NeuronClass::Inc).then_some(i))
            .collect();
        if members.len() >= 3 {
            let mut plan = MergePlan::empty(n);
            plan.add_group(1, vec![members[0], members[1]]).unwrap();
            plan.add_group(1, vec![members[1], members[2]]).unwrap();
            assert!(apply_plan(&pre, &plan, AbstractionDirection::Over).is_err());
        }
    }

    #[test]
    fn greedy_plan_respects_target_width() {
        let net = deep_net(6);
        let pre = preprocess(&net).unwrap();
        let plan = MergePlan::greedy(&pre, 3);
        let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
        // Middle layers should have shrunk toward the target (exact width
        // depends on class balance; it must not exceed the preprocessed
        // width).
        for (k, d) in abs.dims().iter().enumerate().skip(2).take(abs.dims().len() - 3) {
            assert!(*d <= pre.network.dims()[k], "layer {k} grew");
        }
    }
}
