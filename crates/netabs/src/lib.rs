//! Structural network abstraction (the Elboher/Gottschlich/Katz CAV'20
//! approach).
//!
//! A *network abstraction* `f̂` is a structurally smaller network whose
//! outputs dominate the original's (`f̂(x) ≥ f(x)` for the over direction).
//! Verifying `f̂` against an upper-bound safety property then implies the
//! property for `f` — and, per the paper's Proposition 6, for any
//! fine-tuned `f′` that is *still covered* by the same `f̂`.
//!
//! Pipeline:
//!
//! 1. [`classify::preprocess`] — split every hidden neuron by its *effect
//!    class* on the output (increase/decrease), so that each neuron's
//!    influence has a single direction;
//! 2. [`merge`] — merge same-class neurons (`max` of incoming weights for
//!    increasing neurons, `min` for decreasing; outgoing weights summed),
//!    shrinking layer widths while preserving dominance;
//! 3. [`cover`] — check the cover relation `f --Din--> f̂` by bounding the
//!    maximum of the *difference network* `f − f̂` over `Din`;
//! 4. [`merge::MergePlan::split_group`] — refinement: undo one merge group
//!    when the abstraction is too coarse (a false positive).

#![warn(missing_docs)]

pub mod classify;
pub mod cover;
pub mod error;
pub mod merge;
pub mod refine;

pub use classify::{preprocess, NeuronClass};
pub use cover::{check_cover, difference_network, CoverMethod};
pub use error::NetabsError;
pub use merge::{AbstractionDirection, MergePlan};
