//! The cover relation `f --Din--> f̂` (the premise of Proposition 6).
//!
//! `f̂` covers `f` on `Din` (over direction) iff `∀x ∈ Din: f̂(x) ≥ f(x)`.
//! We check this by building the *difference network* `d(x) = f(x) − f̂(x)`
//! — a block-diagonal composition of the two networks — and bounding its
//! maximum over `Din` with the bisection-refined abstract interpreter.
//! A sound non-positive upper bound proves the cover; a concrete positive
//! witness refutes it. This is the same forward style of reasoning the
//! paper's related work cites for differential verification (ReluDiff).

use crate::error::NetabsError;
use covern_absint::box_domain::BoxDomain;
use covern_absint::refine::{prove_forward_containment, Outcome};
use covern_absint::DomainKind;
use covern_nn::{Activation, DenseLayer, Network};
use covern_tensor::Matrix;

/// Builds the network computing `a(x) − b(x)`.
///
/// Layers are stacked block-diagonally; if depths differ the shallower
/// network is padded with identity layers. A final affine layer computes
/// the output difference.
///
/// # Errors
///
/// Returns [`NetabsError::IncompatibleNetworks`] if input or output
/// dimensions differ, and [`NetabsError::NonPiecewiseLinear`] if padding
/// would need to bypass a non-PWL activation (identity padding is only
/// inserted after the shorter network's final layer, so any activations are
/// fine as long as depths match; with differing depths all activations of
/// the padded side must tolerate an identity extension, which is always
/// true — the restriction is only that *corresponding* layers may use any
/// activation each).
pub fn difference_network(a: &Network, b: &Network) -> Result<Network, NetabsError> {
    if a.input_dim() != b.input_dim() {
        return Err(NetabsError::IncompatibleNetworks {
            context: "difference_network",
            detail: format!("input dims {} vs {}", a.input_dim(), b.input_dim()),
        });
    }
    if a.output_dim() != b.output_dim() {
        return Err(NetabsError::IncompatibleNetworks {
            context: "difference_network",
            detail: format!("output dims {} vs {}", a.output_dim(), b.output_dim()),
        });
    }
    let depth = a.num_layers().max(b.num_layers());
    let pad = |net: &Network, k: usize| -> Option<DenseLayer> {
        if k < net.num_layers() {
            Some(net.layers()[k].clone())
        } else {
            None
        }
    };

    let mut layers = Vec::with_capacity(depth + 1);
    // Running widths of the two lanes.
    let mut wa = a.input_dim();
    let mut wb = b.input_dim();
    for k in 0..depth {
        let la = pad(a, k);
        let lb = pad(b, k);
        let (ra, ca, act_a) = match &la {
            Some(l) => (l.out_dim(), l.in_dim(), l.activation()),
            None => (wa, wa, Activation::Identity),
        };
        let (rb, cb, act_b) = match &lb {
            Some(l) => (l.out_dim(), l.in_dim(), l.activation()),
            None => (wb, wb, Activation::Identity),
        };
        if act_a != act_b {
            // Mixed activations inside one DenseLayer are unsupported; the
            // caller's networks must agree layer-wise (true for abstraction
            // vs original, which share activations).
            return Err(NetabsError::IncompatibleNetworks {
                context: "difference_network",
                detail: format!("layer {k} activations differ: {act_a} vs {act_b}"),
            });
        }
        let mut w = Matrix::zeros(ra + rb, ca + cb);
        let mut bias = vec![0.0; ra + rb];
        match &la {
            Some(l) => {
                for i in 0..ra {
                    for j in 0..ca {
                        w.set(i, j, l.weights().get(i, j));
                    }
                }
                bias[..ra].copy_from_slice(l.bias());
            }
            None => {
                for i in 0..ra {
                    w.set(i, i, 1.0);
                }
            }
        }
        match &lb {
            Some(l) => {
                for i in 0..rb {
                    for j in 0..cb {
                        w.set(ra + i, ca + j, l.weights().get(i, j));
                    }
                    bias[ra + i] = l.bias()[i];
                }
            }
            None => {
                for i in 0..rb {
                    w.set(ra + i, ca + i, 1.0);
                }
            }
        }
        layers.push(DenseLayer::new(w, bias, act_a).expect("block-diagonal shapes agree"));
        wa = ra;
        wb = rb;
    }
    // Final difference layer: out = lane_a − lane_b.
    let out_dim = a.output_dim();
    let mut w = Matrix::zeros(out_dim, wa + wb);
    for i in 0..out_dim {
        w.set(i, i, 1.0);
        w.set(i, wa + i, -1.0);
    }
    layers.push(
        DenseLayer::new(w, vec![0.0; out_dim], Activation::Identity)
            .expect("difference layer shapes agree"),
    );
    // The first layer needs doubled inputs: x is fed to both lanes. Prepend a
    // duplication layer.
    let in_dim = a.input_dim();
    let mut dup = Matrix::zeros(2 * in_dim, in_dim);
    for i in 0..in_dim {
        dup.set(i, i, 1.0);
        dup.set(in_dim + i, i, 1.0);
    }
    let mut all = vec![DenseLayer::new(dup, vec![0.0; 2 * in_dim], Activation::Identity)
        .expect("duplication layer shapes agree")];
    all.extend(layers);
    Network::new(all).map_err(|e| NetabsError::IncompatibleNetworks {
        context: "difference_network",
        detail: format!("assembly failed: {e}"),
    })
}

/// How to discharge the cover check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverMethod {
    /// Bisection-refined symbolic interval analysis with the given split
    /// budget. Cheap, but the difference `f − f̂` is exactly `0` on large
    /// input regions, which abstract interpretation can only certify after
    /// all ReLUs stabilise — expect `Unknown` on tight instances.
    Refinement {
        /// Maximum number of input bisections.
        max_splits: usize,
    },
    /// Exact big-M MILP on the difference network (sound and complete for
    /// PWL activations). This is the method of record for Proposition 6.
    Milp {
        /// Branch-and-bound node budget.
        node_limit: usize,
    },
}

/// Checks the cover relation `∀x ∈ din : candidate(x) ≤ abstraction(x)`
/// (over direction) by bounding `candidate − abstraction` from above.
///
/// # Errors
///
/// Returns [`NetabsError::IncompatibleNetworks`] if the networks cannot be
/// compared or the underlying solver fails.
pub fn check_cover(
    abstraction: &Network,
    candidate: &Network,
    din: &BoxDomain,
    method: CoverMethod,
) -> Result<Outcome, NetabsError> {
    let diff = difference_network(candidate, abstraction)?;
    // Target: difference ≤ 0 (+ tiny slack for round-off).
    let target = BoxDomain::from_bounds(&vec![(f64::NEG_INFINITY, 1e-9); diff.output_dim()])
        .expect("half-space target is well-formed");
    match method {
        CoverMethod::Refinement { max_splits } => {
            prove_forward_containment(&diff, din, &target, DomainKind::Symbolic, max_splits)
                .map_err(|e| NetabsError::IncompatibleNetworks {
                    context: "check_cover (refinement)",
                    detail: e.to_string(),
                })
        }
        CoverMethod::Milp { node_limit } => {
            match covern_milp::query::check_containment_with_limit(&diff, din, &target, node_limit)
            {
                Ok(covern_milp::query::Containment::Proved) => Ok(Outcome::Proved),
                Ok(covern_milp::query::Containment::Refuted { input_witness, .. }) => {
                    Ok(Outcome::Refuted(input_witness))
                }
                Err(covern_milp::MilpError::NodeLimit { .. }) => Ok(Outcome::Unknown),
                // Every variable in the encoding is bounded, so a genuine
                // unbounded LP is impossible; the verdict can only come from
                // numerical degeneracy in wide difference networks. Answer
                // conservatively.
                Err(covern_milp::MilpError::Unbounded)
                | Err(covern_milp::MilpError::IterationLimit) => Ok(Outcome::Unknown),
                Err(e) => Err(NetabsError::IncompatibleNetworks {
                    context: "check_cover (milp)",
                    detail: e.to_string(),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::preprocess;
    use crate::merge::{apply_plan, AbstractionDirection, MergePlan};
    use covern_tensor::Rng;

    fn deep_net(seed: u64) -> Network {
        let mut rng = Rng::seeded(seed);
        Network::random(&[2, 5, 4, 1], Activation::Relu, Activation::Identity, &mut rng)
    }

    #[test]
    fn difference_of_identical_networks_is_zero() {
        let net = deep_net(11);
        let diff = difference_network(&net, &net).unwrap();
        let mut rng = Rng::seeded(12);
        for _ in 0..100 {
            let x = [rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)];
            let d = diff.forward(&x).unwrap();
            assert!(d[0].abs() < 1e-9, "difference {d:?}");
        }
    }

    #[test]
    fn difference_matches_manual_subtraction() {
        let a = deep_net(13);
        let b = deep_net(14);
        let diff = difference_network(&a, &b).unwrap();
        let mut rng = Rng::seeded(15);
        for _ in 0..200 {
            let x = [rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)];
            let expected = a.forward(&x).unwrap()[0] - b.forward(&x).unwrap()[0];
            let got = diff.forward(&x).unwrap()[0];
            assert!((expected - got).abs() < 1e-9, "{expected} vs {got}");
        }
    }

    #[test]
    fn incompatible_networks_rejected() {
        let a = deep_net(16);
        let mut rng = Rng::seeded(17);
        let b3 = Network::random(&[3, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        assert!(difference_network(&a, &b3).is_err());
        let b2out = Network::random(&[2, 4, 2], Activation::Relu, Activation::Identity, &mut rng);
        assert!(difference_network(&a, &b2out).is_err());
    }

    #[test]
    fn abstraction_covers_its_own_original() {
        let net = deep_net(18);
        let pre = preprocess(&net).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
        let outcome =
            check_cover(&abs, &net, &din, CoverMethod::Milp { node_limit: 200_000 }).unwrap();
        assert!(outcome.is_proved(), "own abstraction must cover: {outcome:?}");
    }

    #[test]
    fn cover_refuted_when_candidate_exceeds_abstraction() {
        // Candidate = original + large positive bias at the output: the old
        // abstraction cannot cover it.
        let net = deep_net(19);
        let pre = preprocess(&net).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
        let mut bumped = net.clone();
        let last = bumped.num_layers() - 1;
        bumped.layers_mut()[last].bias_mut()[0] += 100.0;
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
        // The refinement path finds the concrete witness immediately (the
        // very first probe violates), exercising the cheap method.
        match check_cover(&abs, &bumped, &din, CoverMethod::Refinement { max_splits: 400 }).unwrap()
        {
            Outcome::Refuted(x) => {
                let fx = bumped.forward(&x).unwrap()[0];
                let ax = abs.forward(&x).unwrap()[0];
                assert!(fx > ax, "witness must violate the cover: {fx} vs {ax}");
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn slightly_tuned_network_often_remains_covered() {
        // The Prop-6 scenario: tiny parameter drift usually stays under the
        // abstraction's slack. We assert only "no crash + sound answers";
        // when the answer is Proved, validate it on samples.
        let net = deep_net(20);
        let pre = preprocess(&net).unwrap();
        let plan = MergePlan::greedy(&pre, 2);
        let abs = apply_plan(&pre, &plan, AbstractionDirection::Over).unwrap();
        let mut rng = Rng::seeded(21);
        let tuned = net.perturbed(1e-4, &mut rng);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
        let outcome =
            check_cover(&abs, &tuned, &din, CoverMethod::Milp { node_limit: 200_000 }).unwrap();
        if outcome.is_proved() {
            for _ in 0..200 {
                let x = [rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)];
                let fx = tuned.forward(&x).unwrap()[0];
                let ax = abs.forward(&x).unwrap()[0];
                assert!(fx <= ax + 1e-6, "proved cover violated at sample");
            }
        }
    }
}
