//! Effect classification and the class-splitting preprocess.
//!
//! A hidden neuron is **increasing** (`Inc`) if raising its value can only
//! raise the network output, **decreasing** (`Dec`) if it can only lower
//! it. After training, most neurons are neither — their outgoing weights
//! mix both effects — so the preprocess *splits* each neuron into at most
//! two copies, one per effect class, partitioning its outgoing weights.
//! The split preserves the network function exactly and leaves every
//! neuron with a well-defined class, which is what makes the merge rules
//! of [`crate::merge`] sound.

use crate::error::NetabsError;
use covern_nn::{DenseLayer, Network};
use covern_tensor::Matrix;
use std::fmt;

/// The effect of a neuron on the (single, increasing) output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeuronClass {
    /// Raising the neuron's value cannot lower the output.
    Inc,
    /// Raising the neuron's value cannot raise the output.
    Dec,
}

impl NeuronClass {
    fn flipped(self) -> Self {
        match self {
            NeuronClass::Inc => NeuronClass::Dec,
            NeuronClass::Dec => NeuronClass::Inc,
        }
    }
}

impl fmt::Display for NeuronClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuronClass::Inc => write!(f, "inc"),
            NeuronClass::Dec => write!(f, "dec"),
        }
    }
}

/// The result of preprocessing: an equivalent network in which every
/// neuron has a single effect class.
#[derive(Debug, Clone)]
pub struct ClassifiedNetwork {
    /// The (possibly widened) equivalent network.
    pub network: Network,
    /// Per layer (0-based, output of `layers()[k]`), the class of each
    /// neuron. The final layer's neurons are all `Inc` by convention.
    pub classes: Vec<Vec<NeuronClass>>,
}

/// Splits every hidden neuron by effect class, yielding an *equivalent*
/// network where each neuron is purely increasing or purely decreasing.
///
/// Works backward from the output: the output neurons are `Inc` by
/// convention; for each earlier boundary, a neuron's outgoing weight `w`
/// to a target of class `c` has effect `c` if `w > 0` and `c.flipped()`
/// if `w < 0`. Neurons with both effects present are duplicated, and the
/// outgoing weights are partitioned between the copies.
///
/// # Errors
///
/// Returns [`NetabsError::NonPiecewiseLinear`] if a hidden activation is
/// not ReLU/LeakyReLU/Identity (splitting relies on `act` being applied
/// component-wise to identical copies, which holds for any activation, but
/// the downstream merge rules require monotone PWL — we reject early).
pub fn preprocess(net: &Network) -> Result<ClassifiedNetwork, NetabsError> {
    for layer in net.layers() {
        if !layer.activation().is_piecewise_linear() {
            return Err(NetabsError::NonPiecewiseLinear(layer.activation().to_string()));
        }
    }
    let n = net.num_layers();
    let mut layers: Vec<DenseLayer> = net.layers().to_vec();
    let mut classes: Vec<Vec<NeuronClass>> = Vec::with_capacity(n);
    classes.resize(n, Vec::new());
    classes[n - 1] = vec![NeuronClass::Inc; layers[n - 1].out_dim()];

    // Walk boundaries backward: boundary b sits between layers[b] (whose
    // outputs we may split) and layers[b+1] (whose columns we partition).
    for b in (0..n - 1).rev() {
        let next_classes = classes[b + 1].clone();
        let cur = &layers[b];
        let next = &layers[b + 1];
        let in_dim = cur.out_dim();

        // For each neuron decide which copies it needs.
        // effect(w, target) = target class if w > 0, flipped if w < 0.
        let mut copies: Vec<Vec<NeuronClass>> = Vec::with_capacity(in_dim);
        for i in 0..in_dim {
            let mut has_inc = false;
            let mut has_dec = false;
            for (t, &tc) in next_classes.iter().enumerate() {
                let w = next.weights().get(t, i);
                if w == 0.0 {
                    continue;
                }
                let eff = if w > 0.0 { tc } else { tc.flipped() };
                match eff {
                    NeuronClass::Inc => has_inc = true,
                    NeuronClass::Dec => has_dec = true,
                }
            }
            let c = match (has_inc, has_dec) {
                (true, true) => vec![NeuronClass::Inc, NeuronClass::Dec],
                (false, true) => vec![NeuronClass::Dec],
                // No outgoing weights at all defaults to Inc.
                _ => vec![NeuronClass::Inc],
            };
            copies.push(c);
        }

        let new_width: usize = copies.iter().map(Vec::len).sum();
        if new_width == in_dim {
            // Nothing to split at this boundary; classes are determined.
            let mut cls = Vec::with_capacity(in_dim);
            for c in &copies {
                cls.push(c[0]);
            }
            classes[b] = cls;
            continue;
        }

        // Build the widened current layer (duplicate rows) and the
        // partitioned next layer (split columns).
        let mut new_rows = Matrix::zeros(new_width, cur.in_dim());
        let mut new_bias = Vec::with_capacity(new_width);
        let mut new_next = Matrix::zeros(next.out_dim(), new_width);
        let mut cls = Vec::with_capacity(new_width);
        let mut col = 0usize;
        for (i, copy_classes) in copies.iter().enumerate() {
            for &cc in copy_classes {
                for j in 0..cur.in_dim() {
                    new_rows.set(col, j, cur.weights().get(i, j));
                }
                new_bias.push(cur.bias()[i]);
                // Assign this copy the outgoing weights whose effect is cc.
                for (t, &tc) in next_classes.iter().enumerate() {
                    let w = next.weights().get(t, i);
                    if w == 0.0 {
                        continue;
                    }
                    let eff = if w > 0.0 { tc } else { tc.flipped() };
                    if eff == cc {
                        new_next.set(t, col, w);
                    }
                }
                cls.push(cc);
                col += 1;
            }
        }
        let act_cur = cur.activation();
        let act_next = next.activation();
        let next_bias = next.bias().to_vec();
        layers[b] = DenseLayer::new(new_rows, new_bias, act_cur).expect("split preserves shape");
        layers[b + 1] =
            DenseLayer::new(new_next, next_bias, act_next).expect("split preserves shape");
        classes[b] = cls;
    }

    let network = Network::new(layers).expect("splitting preserves dimension chaining");
    Ok(ClassifiedNetwork { network, classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use covern_nn::{Activation, NetworkBuilder};
    use covern_tensor::Rng;

    fn mixed_net() -> Network {
        // Hidden neuron 0 feeds the output with both signs via two outputs
        // of an intermediate layer.
        NetworkBuilder::new(2)
            .dense_from_rows(&[&[1.0, -1.0], &[0.5, 0.5]], &[0.0, 0.0], Activation::Relu)
            .dense_from_rows(&[&[1.0, -2.0], &[-3.0, 1.0]], &[0.1, -0.1], Activation::Relu)
            .dense_from_rows(&[&[1.0, 1.0]], &[0.0], Activation::Identity)
            .build()
            .expect("mixed net")
    }

    #[test]
    fn preprocess_preserves_function() {
        let net = mixed_net();
        let pre = preprocess(&net).unwrap();
        let mut rng = Rng::seeded(91);
        for _ in 0..200 {
            let x = [rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)];
            let y0 = net.forward(&x).unwrap();
            let y1 = pre.network.forward(&x).unwrap();
            for (a, b) in y0.iter().zip(y1.iter()) {
                assert!((a - b).abs() < 1e-9, "split changed the function: {a} vs {b}");
            }
        }
    }

    #[test]
    fn preprocess_assigns_class_to_every_neuron() {
        let net = mixed_net();
        let pre = preprocess(&net).unwrap();
        assert_eq!(pre.classes.len(), pre.network.num_layers());
        for (k, layer) in pre.network.layers().iter().enumerate() {
            assert_eq!(pre.classes[k].len(), layer.out_dim(), "layer {k} class arity");
        }
    }

    #[test]
    fn classes_predict_output_monotonicity() {
        // Empirically verify: bumping an Inc neuron's bias never lowers the
        // output; bumping a Dec neuron's bias never raises it.
        let net = mixed_net();
        let pre = preprocess(&net).unwrap();
        let mut rng = Rng::seeded(92);
        let n = pre.network.num_layers();
        for layer_idx in 0..n - 1 {
            for neuron in 0..pre.network.layers()[layer_idx].out_dim() {
                let mut bumped = pre.network.clone();
                bumped.layers_mut()[layer_idx].bias_mut()[neuron] += 0.05;
                let class = pre.classes[layer_idx][neuron];
                for _ in 0..50 {
                    let x = [rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)];
                    let y0 = pre.network.forward(&x).unwrap()[0];
                    let y1 = bumped.forward(&x).unwrap()[0];
                    match class {
                        NeuronClass::Inc => assert!(
                            y1 >= y0 - 1e-9,
                            "Inc neuron ({layer_idx},{neuron}) lowered output"
                        ),
                        NeuronClass::Dec => assert!(
                            y1 <= y0 + 1e-9,
                            "Dec neuron ({layer_idx},{neuron}) raised output"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn sigmoid_network_is_rejected() {
        let net = NetworkBuilder::new(1)
            .dense_from_rows(&[&[1.0]], &[0.0], Activation::Sigmoid)
            .build()
            .unwrap();
        assert!(matches!(preprocess(&net), Err(NetabsError::NonPiecewiseLinear(_))));
    }

    #[test]
    fn already_pure_network_is_unchanged() {
        // All weights positive: everything is Inc, no splitting needed.
        let net = NetworkBuilder::new(2)
            .dense_from_rows(&[&[1.0, 0.5], &[0.25, 1.0]], &[0.0, 0.0], Activation::Relu)
            .dense_from_rows(&[&[1.0, 2.0]], &[0.0], Activation::Identity)
            .build()
            .unwrap();
        let pre = preprocess(&net).unwrap();
        assert_eq!(pre.network.dims(), net.dims());
        assert!(pre.classes[0].iter().all(|&c| c == NeuronClass::Inc));
    }

    #[test]
    fn split_grows_width_by_at_most_factor_two() {
        let mut rng = Rng::seeded(93);
        let net = Network::random(&[3, 8, 6, 1], Activation::Relu, Activation::Identity, &mut rng);
        let pre = preprocess(&net).unwrap();
        let orig = net.dims();
        let new = pre.network.dims();
        for (o, n) in orig.iter().zip(new.iter()) {
            assert!(*n <= 2 * o, "width grew too much: {o} -> {n}");
        }
        // Function must still be identical.
        for _ in 0..100 {
            let x: Vec<f64> = (0..3).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let y0 = net.forward(&x).unwrap();
            let y1 = pre.network.forward(&x).unwrap();
            assert!((y0[0] - y1[0]).abs() < 1e-9);
        }
    }
}
