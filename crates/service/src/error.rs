//! Error type of the service client and transports.

use crate::protocol::ErrorInfo;
use std::fmt;

/// Client-side failures (the server reports its own via
/// [`Reply::Error`](crate::protocol::Reply::Error)).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServiceError {
    /// Transport I/O failed (connect, read, write, EOF).
    Io(String),
    /// A message failed to encode or decode.
    Encode(String),
    /// The server answered with a protocol error.
    Remote(ErrorInfo),
    /// The server answered with a reply variant the call cannot accept.
    UnexpectedReply(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(msg) => write!(f, "transport error: {msg}"),
            ServiceError::Encode(msg) => write!(f, "codec error: {msg}"),
            ServiceError::Remote(e) => write!(f, "server error [{}]: {}", e.code, e.message),
            ServiceError::UnexpectedReply(r) => write!(f, "unexpected reply: {r}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}
