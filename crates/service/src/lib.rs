//! Long-running verification service for continuous safety verification.
//!
//! The paper's loop — verify once, then cheaply re-verify as the
//! system-under-test drifts — is a *resident* workload: proof artifacts
//! are worth the most when they stay warm in memory while deltas keep
//! arriving. This crate turns the `covern` library into that resident
//! process: a daemon (`covern_cli serve`) speaking **`covern-protocol-v1`**
//! (newline-delimited JSON) over stdio or TCP, multiplexing any number of
//! concurrent client **sessions** — each a problem + abstract domain +
//! margin with its own delta stream — over a shared worker pool and one
//! **process-wide** content-addressed artifact cache, so identical full
//! verifications are computed once even across different clients.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`protocol`] | the `covern-protocol-v1` wire types (spec: `docs/PROTOCOL.md`) |
//! | [`session`] | sessions, bounded inboxes, the process-wide registry |
//! | [`dispatch`] | the request dispatcher and drain-task scheduler |
//! | [`transport`] | stdio and TCP line pumps |
//! | [`metrics_http`] | optional plain-HTTP `/metrics` listener for scrapers |
//! | [`client`] | blocking client + campaign-corpus replay (load testing) |
//! | [`loadgen`] | the load generator: concurrent sessions, canonical report |
//! | [`cluster`] | sharded multi-worker coordinator: routing, failover, two-tier cache |
//! | [`error`] | client-side error type |
//!
//! The daemon is instrumented end-to-end through the process-wide
//! [`covern_observe`] registry (request/verdict counters, latency
//! histograms, inbox and drain gauges) — `docs/OPERATIONS.md` documents
//! every series and the structured log format.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use covern_service::client::Client;
//! use covern_service::dispatch::{Service, ServiceConfig};
//! use covern_service::transport::serve_tcp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Service::new(ServiceConfig::default());
//! let server = serve_tcp(service, "127.0.0.1:0")?;
//! let mut client = Client::connect(server.local_addr())?;
//! let info = client.hello()?;
//! assert_eq!(info.protocol, covern_service::protocol::PROTOCOL_VERSION);
//! client.shutdown()?;
//! server.join();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod dispatch;
pub mod error;
pub mod loadgen;
pub mod metrics_http;
pub mod protocol;
pub mod session;
pub mod transport;

pub use client::{replay_corpus, replay_scenario, Client, ReplayOutcome};
pub use cluster::{Cluster, ClusterConfig, DiskStore, HashRing, KillAfter, WorkerHandle};
pub use dispatch::{Service, ServiceConfig};
pub use error::ServiceError;
pub use loadgen::{LoadReport, LoadgenConfig};
pub use metrics_http::{serve_metrics_http, MetricsHttpServer};
pub use protocol::{Command, Reply, Request, Response, PROTOCOL_VERSION};
pub use session::{Session, SessionRegistry};
pub use transport::{serve_stdio, serve_tcp, TcpServer};
