//! The request dispatcher: protocol commands → session work.
//!
//! One [`Service`] lives per daemon process and is shared by every
//! transport connection. It owns:
//!
//! * the **process-wide** content-addressed [`ArtifactCache`] — every
//!   session's original verification and full fallbacks route through it,
//!   so fine-tune families dedupe full verifications *across clients*;
//! * the [`SessionRegistry`] of live sessions;
//! * a persistent [`WorkerPool`] on which session **drain tasks** run.
//!
//! Execution model: `Open`/`Resume` run on the calling transport thread
//! (two clients opening concurrently are concurrent; the cache's
//! single-flight slots dedupe identical instances). `Delta` only *queues*:
//! the session's drain task — at most one per session, submitted to the
//! pool on demand — absorbs queued deltas strictly in submission order and
//! pushes each verdict to the responder that sent it. `Shutdown` flips the
//! draining flag (new work is refused with `ShuttingDown`), waits until
//! every drain task has finished, and only then acknowledges — in-flight
//! verifications are never abandoned.

use crate::protocol::{
    BusyInfo, CheckpointState, Command, ErrorCode, ErrorInfo, MetricsText, OpenParams, Reply,
    Request, Response, ResumeParams, ServerInfo, SessionOpened, StatsSnapshot, METRICS_FORMAT,
    PROTOCOL_VERSION,
};
use crate::session::{Enqueue, QueuedDelta, Session, SessionRegistry, SessionVerifier};
use covern_absint::DomainKind;
use covern_campaign::ArtifactCache;
use covern_closedloop::{is_loop_checkpoint, LoopVerifier, TubeCache};
use covern_core::cache::VerifyCache;
use covern_core::method::LocalMethod;
use covern_core::parallel::WorkerPool;
use covern_core::pipeline::ContinuousVerifier;
use covern_core::problem::VerificationProblem;
use covern_observe::{metrics, obs_debug, obs_info, obs_warn};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Server configuration (host-side; never on the wire).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker-pool size for session drain tasks; `0` uses the machine's
    /// parallelism.
    pub workers: usize,
    /// Per-session verifier thread budget for local subproblems.
    pub session_threads: usize,
    /// Bounded-inbox capacity per session; a full inbox answers `Busy`.
    pub inbox_capacity: usize,
    /// Local method for the propositions' exact checks.
    pub method: LocalMethod,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            session_threads: 1,
            inbox_capacity: 32,
            method: LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: 256 },
        }
    }
}

/// A reply sink. Transports hand one per connection to the dispatcher;
/// drain tasks keep a clone per queued delta, so a verdict always returns
/// to the connection that sent its delta.
pub trait Respond: Send + Sync {
    /// Delivers one response line. Implementations swallow I/O failures
    /// (a vanished client must not kill its session's drain task).
    fn send(&self, response: &Response);
}

/// A [`Respond`] writing newline-delimited JSON to any writer.
pub struct WriterResponder {
    writer: Mutex<Box<dyn std::io::Write + Send>>,
}

impl WriterResponder {
    /// Wraps a writer (one per connection).
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> Self {
        Self { writer: Mutex::new(writer) }
    }
}

impl Respond for WriterResponder {
    fn send(&self, response: &Response) {
        let Ok(line) = crate::protocol::encode(response) else {
            return;
        };
        let mut w = self.writer.lock().expect("responder lock");
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// State shared with drain tasks (kept apart from [`Service`] so tasks
/// need no `Arc<Service>` receiver).
struct Shared {
    method: LocalMethod,
    deltas_applied: AtomicU64,
    /// Number of drain tasks submitted but not yet finished, and the
    /// condvar `Shutdown` waits on for it to reach zero.
    drains: Mutex<u64>,
    idle: Condvar,
}

impl Shared {
    fn drain_started(&self) {
        *self.drains.lock().expect("drain gauge lock") += 1;
        metrics().drain_tasks_active.inc();
    }

    fn drain_finished(&self) {
        let mut d = self.drains.lock().expect("drain gauge lock");
        *d -= 1;
        metrics().drain_tasks_active.dec();
        if *d == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_idle(&self) {
        let mut d = self.drains.lock().expect("drain gauge lock");
        while *d > 0 {
            d = self.idle.wait(d).expect("drain gauge lock");
        }
    }
}

/// The daemon's dispatcher (see module docs).
pub struct Service {
    config: ServiceConfig,
    cache: Arc<ArtifactCache>,
    /// The process-wide closed-loop tube cache: per-step checkpoints and
    /// controller layer prefixes shared by every closed-loop session, so
    /// fine-tune siblings warm-start across clients just like open-loop
    /// sessions dedupe through the artifact cache.
    tube_cache: Arc<TubeCache>,
    registry: SessionRegistry,
    pool: WorkerPool,
    shared: Arc<Shared>,
    /// The admission gate: `Open`/`Resume`/`Delta` hold the read half
    /// across their check-then-admit sequence; `Shutdown` sets the flag
    /// under the write half. This makes flag-set atomic with admissions —
    /// work is either fully admitted *before* the flag (so the drain
    /// gauge counts it and `wait_idle` waits for it) or observes the flag
    /// and is refused; nothing slips in after the `ShuttingDown` ack.
    admission: RwLock<()>,
    shutting_down: AtomicBool,
}

impl Service {
    /// Builds a service with a fresh process-wide cache.
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.workers
        };
        Arc::new(Self {
            shared: Arc::new(Shared {
                method: config.method,
                deltas_applied: AtomicU64::new(0),
                drains: Mutex::new(0),
                idle: Condvar::new(),
            }),
            config,
            cache: Arc::new(ArtifactCache::new()),
            tube_cache: Arc::new(TubeCache::new()),
            registry: SessionRegistry::new(),
            pool: WorkerPool::new(workers),
            admission: RwLock::new(()),
            shutting_down: AtomicBool::new(false),
        })
    }

    /// The process-wide artifact cache.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The process-wide closed-loop tube cache.
    pub fn tube_cache(&self) -> &Arc<TubeCache> {
        &self.tube_cache
    }

    /// The live-session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Whether `Shutdown` has been received.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Current process-wide counters.
    pub fn stats(&self) -> StatsSnapshot {
        let cache = self.cache.stats();
        StatsSnapshot {
            sessions_open: self.registry.open_count(),
            sessions_opened: self.registry.opened_total(),
            deltas_applied: self.shared.deltas_applied.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: self.cache.len() as u64,
        }
    }

    /// Parses and dispatches one wire line. `Break` means the transport
    /// must stop serving (shutdown acknowledged).
    pub fn handle_line(&self, line: &str, responder: &Arc<dyn Respond>) -> ControlFlow<()> {
        match crate::protocol::decode::<Request>(line) {
            Ok(req) => self.handle_request(req, responder),
            Err(e) => {
                metrics().requests_total.inc();
                metrics().protocol_errors_total.inc();
                obs_warn!("malformed request", error = e);
                // Best effort: salvage the correlation id so the client can
                // still match the failure to its request.
                let id = serde_json::parse(line.trim())
                    .ok()
                    .and_then(|v| {
                        v.field("id")
                            .ok()
                            .and_then(|f| <u64 as serde::Deserialize>::from_value(f).ok())
                    })
                    .unwrap_or(0);
                responder.send(&Response::new(
                    id,
                    Reply::Error(ErrorInfo::new(ErrorCode::MalformedRequest, e.to_string())),
                ));
                ControlFlow::Continue(())
            }
        }
    }

    /// Dispatches one parsed request. `Break` means the transport must
    /// stop serving (shutdown acknowledged).
    pub fn handle_request(&self, req: Request, responder: &Arc<dyn Respond>) -> ControlFlow<()> {
        metrics().requests_total.inc();
        let id = req.id;
        if req.v != PROTOCOL_VERSION {
            metrics().protocol_errors_total.inc();
            responder.send(&Response::new(
                id,
                Reply::Error(ErrorInfo::new(
                    ErrorCode::UnsupportedVersion,
                    format!("server speaks {PROTOCOL_VERSION}, request said {:?}", req.v),
                )),
            ));
            return ControlFlow::Continue(());
        }
        let reply = match req.cmd {
            Command::Hello => Reply::Hello(ServerInfo {
                protocol: PROTOCOL_VERSION.to_owned(),
                server: concat!("covern-service/", env!("CARGO_PKG_VERSION")).to_owned(),
                session_threads: self.config.session_threads as u64,
                inbox_capacity: self.config.inbox_capacity as u64,
            }),
            Command::Open(params) => self.open(params),
            Command::Resume(params) => self.resume(params),
            Command::Delta(params) => {
                // Queuing replies (Busy/Error) return here; the verdict
                // itself is pushed by the drain task.
                match self.delta(id, params, responder) {
                    Some(reply) => reply,
                    None => return ControlFlow::Continue(()),
                }
            }
            Command::Checkpoint(r) => self.checkpoint(r.session),
            Command::Stats => Reply::Stats(self.stats()),
            Command::Metrics => {
                let m = metrics();
                m.metrics_scrapes_total.inc();
                Reply::Metrics(MetricsText {
                    format: METRICS_FORMAT.to_owned(),
                    text: m.render_prometheus(),
                })
            }
            Command::Close(r) => match self.registry.remove(r.session) {
                Some(session) => {
                    metrics().sessions_closed_total.inc();
                    metrics().sessions_open.dec();
                    obs_info!("session closed", session = r.session, label = session.label());
                    Reply::Closed(session.summary())
                }
                None => unknown_session(r.session),
            },
            Command::Shutdown => {
                // The write half waits out any admission in flight, so
                // everything admitted before the flag is visible to the
                // drain gauge below; everything after is refused.
                {
                    let _gate = self.admission.write().unwrap_or_else(|p| p.into_inner());
                    self.shutting_down.store(true, Ordering::SeqCst);
                }
                obs_info!("shutdown requested, draining", open = self.registry.open_count());
                // Drain every queued delta before acknowledging: clients
                // that pipelined deltas get all their verdicts, then the
                // ack, in order.
                self.shared.wait_idle();
                obs_info!("shutdown drain complete");
                responder.send(&Response::new(id, Reply::ShuttingDown));
                return ControlFlow::Break(());
            }
        };
        if matches!(reply, Reply::Error(_)) {
            metrics().protocol_errors_total.inc();
        }
        if matches!(reply, Reply::Busy(_)) {
            metrics().busy_replies_total.inc();
        }
        responder.send(&Response::new(id, reply));
        ControlFlow::Continue(())
    }

    /// Blocks until every submitted drain task has finished.
    pub fn wait_idle(&self) {
        self.shared.wait_idle();
    }

    fn open(&self, params: OpenParams) -> Reply {
        let _gate = self.admission.read().unwrap_or_else(|p| p.into_inner());
        if self.is_shutting_down() {
            return shutting_down();
        }
        let t0 = Instant::now();
        if let Some(spec) = params.closed_loop {
            return self.open_loop_session(params.label, spec, params.network, params.domain, t0);
        }
        let problem = match VerificationProblem::new(params.network, params.din, params.dout) {
            Ok(p) => p,
            Err(e) => return invalid_problem(e.to_string()),
        };
        let verifier = match ContinuousVerifier::with_margin_cached(
            problem,
            params.domain,
            params.margin,
            Some(Arc::clone(&self.cache) as Arc<dyn VerifyCache>),
            self.config.session_threads,
        ) {
            Ok(v) => v,
            Err(e) => return invalid_problem(e.to_string()),
        };
        let outcome = verifier.initial_report().outcome.to_string();
        let wall_us = verifier.initial_report().wall.as_micros() as u64;
        let session = self.registry.insert(params.label, SessionVerifier::Continuous(verifier));
        metrics().open_latency_seconds.observe_duration(t0.elapsed());
        metrics().sessions_opened_total.inc();
        metrics().sessions_open.inc();
        obs_info!(
            "session opened",
            session = session.id(),
            label = session.label(),
            outcome = outcome
        );
        Reply::Opened(SessionOpened {
            session: session.id(),
            label: session.label().to_owned(),
            outcome,
            wall_us,
        })
    }

    /// Opens a **closed-loop** session: validates the spec against the
    /// controller, runs the initial tube propagation through the
    /// process-wide tube cache, and registers the session.
    fn open_loop_session(
        &self,
        label: String,
        spec: covern_closedloop::ClosedLoopSpec,
        controller: covern_nn::Network,
        domain: DomainKind,
        t0: Instant,
    ) -> Reply {
        let mut verifier = match LoopVerifier::new(spec, controller, domain) {
            Ok(v) => v,
            Err(e) => return invalid_problem(e.to_string()),
        };
        verifier.set_cache(Some(Arc::clone(&self.tube_cache)));
        let report = match verifier.verify() {
            Ok(r) => r,
            Err(e) => return invalid_problem(e.to_string()),
        };
        let session = self.registry.insert(label, SessionVerifier::Loop(verifier));
        metrics().open_latency_seconds.observe_duration(t0.elapsed());
        metrics().sessions_opened_total.inc();
        metrics().sessions_open.inc();
        obs_info!(
            "closed-loop session opened",
            session = session.id(),
            label = session.label(),
            outcome = report.outcome
        );
        Reply::Opened(SessionOpened {
            session: session.id(),
            label: session.label().to_owned(),
            outcome: report.outcome,
            wall_us: report.wall_us,
        })
    }

    fn resume(&self, params: ResumeParams) -> Reply {
        let _gate = self.admission.read().unwrap_or_else(|p| p.into_inner());
        if self.is_shutting_down() {
            return shutting_down();
        }
        let t0 = Instant::now();
        if is_loop_checkpoint(&params.state) {
            let mut verifier = match LoopVerifier::from_checkpoint_json(&params.state) {
                Ok(v) => v,
                Err(e) => return invalid_problem(e.to_string()),
            };
            verifier.set_cache(Some(Arc::clone(&self.tube_cache)));
            // A loop checkpoint carries no stored report; re-propagating
            // through the shared tube cache restores the outcome (and is
            // step-for-step warm when this server verified the tube
            // before).
            let report = match verifier.verify() {
                Ok(r) => r,
                Err(e) => return invalid_problem(e.to_string()),
            };
            let session = self.registry.insert(params.label, SessionVerifier::Loop(verifier));
            metrics().open_latency_seconds.observe_duration(t0.elapsed());
            metrics().sessions_opened_total.inc();
            metrics().sessions_open.inc();
            obs_info!(
                "closed-loop session resumed",
                session = session.id(),
                label = session.label(),
                outcome = report.outcome
            );
            return Reply::Opened(SessionOpened {
                session: session.id(),
                label: session.label().to_owned(),
                outcome: report.outcome,
                wall_us: 0,
            });
        }
        let mut verifier = match ContinuousVerifier::from_checkpoint_json(&params.state) {
            Ok(v) => v,
            Err(e) => return invalid_problem(e.to_string()),
        };
        verifier.set_cache(Some(Arc::clone(&self.cache) as Arc<dyn VerifyCache>));
        verifier.set_threads(self.config.session_threads);
        let outcome = verifier.initial_report().outcome.to_string();
        let session = self.registry.insert(params.label, SessionVerifier::Continuous(verifier));
        metrics().open_latency_seconds.observe_duration(t0.elapsed());
        metrics().sessions_opened_total.inc();
        metrics().sessions_open.inc();
        obs_info!(
            "session resumed",
            session = session.id(),
            label = session.label(),
            outcome = outcome
        );
        Reply::Opened(SessionOpened {
            session: session.id(),
            label: session.label().to_owned(),
            outcome,
            wall_us: 0,
        })
    }

    /// Queues a delta. Returns `Some(reply)` for immediate answers
    /// (unknown session, busy, shutting down); `None` when the verdict
    /// will be pushed asynchronously by the drain task.
    fn delta(
        &self,
        id: u64,
        params: crate::protocol::DeltaParams,
        responder: &Arc<dyn Respond>,
    ) -> Option<Reply> {
        let _gate = self.admission.read().unwrap_or_else(|p| p.into_inner());
        if self.is_shutting_down() {
            return Some(shutting_down());
        }
        let Some(session) = self.registry.get(params.session) else {
            return Some(unknown_session(params.session));
        };
        let item = QueuedDelta { id, delta: params.delta, responder: Arc::clone(responder) };
        match session.try_enqueue(item, self.config.inbox_capacity) {
            Enqueue::Busy { pending } => Some(Reply::Busy(BusyInfo {
                session: params.session,
                pending,
                capacity: self.config.inbox_capacity as u64,
            })),
            Enqueue::Queued => None,
            Enqueue::StartDrain => {
                let shared = Arc::clone(&self.shared);
                shared.drain_started();
                self.pool.submit(move || drain_session(&shared, &session));
                None
            }
        }
    }

    fn checkpoint(&self, session_id: u64) -> Reply {
        let Some(session) = self.registry.get(session_id) else {
            return unknown_session(session_id);
        };
        match session.checkpoint() {
            Ok(state) => Reply::Checkpoint(CheckpointState { session: session_id, state }),
            Err(e) => invalid_problem(e.to_string()),
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("sessions_open", &self.registry.open_count())
            .field("shutting_down", &self.is_shutting_down())
            .finish()
    }
}

/// A session's drain task: absorbs queued deltas in order until the inbox
/// is empty. Runs on the service's worker pool.
///
/// Every apply is panic-contained ([`WorkerPool`]'s contract: hosts that
/// must survive arbitrary jobs catch panics inside the closure): a panic
/// — a verifier bug on an adversarial input, a lock poisoned by an
/// earlier one — answers that delta with `DeltaFailed` and moves on, so
/// the session never wedges and the shutdown drain gauge always reaches
/// zero.
fn drain_session(shared: &Shared, session: &Arc<Session>) {
    while let Some(item) = session.pop_or_finish() {
        let t0 = Instant::now();
        let applied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.apply(&item.delta, &shared.method)
        }));
        let reply = match applied {
            Ok(Ok(event)) => {
                shared.deltas_applied.fetch_add(1, Ordering::Relaxed);
                let m = metrics();
                m.deltas_applied_total.inc();
                m.verdict_latency_seconds.observe_duration(t0.elapsed());
                match event.record.outcome.as_str() {
                    "proved" => &m.verdicts_proved_total,
                    "refuted" => &m.verdicts_refuted_total,
                    _ => &m.verdicts_unknown_total,
                }
                .inc();
                obs_debug!(
                    "verdict",
                    session = event.session,
                    seq = event.seq,
                    outcome = event.record.outcome
                );
                Reply::Verdict(event)
            }
            Ok(Err(e)) => {
                metrics().delta_failures_total.inc();
                obs_warn!("delta failed", session = session.id(), error = e);
                Reply::Error(ErrorInfo::new(ErrorCode::DeltaFailed, e))
            }
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                metrics().delta_failures_total.inc();
                obs_warn!("delta panicked", session = session.id(), panic = what);
                Reply::Error(ErrorInfo::new(
                    ErrorCode::DeltaFailed,
                    format!("internal panic while applying delta: {what}"),
                ))
            }
        };
        item.responder.send(&Response::new(item.id, reply));
    }
    shared.drain_finished();
}

fn unknown_session(id: u64) -> Reply {
    Reply::Error(ErrorInfo::new(ErrorCode::UnknownSession, format!("no session {id}")))
}

fn invalid_problem(message: String) -> Reply {
    Reply::Error(ErrorInfo::new(ErrorCode::InvalidProblem, message))
}

fn shutting_down() -> Reply {
    Reply::Error(ErrorInfo::new(ErrorCode::ShuttingDown, "server is draining for shutdown"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use covern_absint::BoxDomain;
    use covern_campaign::DeltaEvent;
    use covern_core::artifact::Margin;
    use covern_nn::{Activation, Network, NetworkBuilder};

    /// Collects every response for assertion.
    #[derive(Default)]
    pub(crate) struct RecordingResponder {
        pub responses: Mutex<Vec<Response>>,
    }

    impl Respond for RecordingResponder {
        fn send(&self, response: &Response) {
            self.responses.lock().unwrap().push(response.clone());
        }
    }

    fn fig2_net() -> Network {
        NetworkBuilder::new(2)
            .dense_from_rows(
                &[&[1.0, -2.0], &[-2.0, 1.0], &[1.0, -1.0]],
                &[0.0; 3],
                Activation::Relu,
            )
            .dense_from_rows(&[&[2.0, 2.0, -1.0]], &[0.0], Activation::Relu)
            .build()
            .unwrap()
    }

    fn open_params(label: &str) -> OpenParams {
        OpenParams {
            label: label.into(),
            network: fig2_net(),
            din: BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap(),
            dout: BoxDomain::from_bounds(&[(-0.5, 12.0)]).unwrap(),
            domain: DomainKind::Box,
            margin: Margin::NONE,
            closed_loop: None,
        }
    }

    fn wait_for_responses(rec: &RecordingResponder, n: usize) {
        for _ in 0..2_000 {
            if rec.responses.lock().unwrap().len() >= n {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!(
            "timed out waiting for {n} responses; got {:?}",
            rec.responses.lock().unwrap().len()
        );
    }

    #[test]
    fn open_delta_verdict_flow() {
        let service = Service::new(ServiceConfig::default());
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();

        let _ =
            service.handle_request(Request::new(1, Command::Open(open_params("t"))), &responder);
        let opened = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Opened(o) = &rs[0].reply else { panic!("expected Opened, got {:?}", rs[0]) };
            assert_eq!(o.outcome, "proved");
            o.clone()
        };

        let enlarged = BoxDomain::from_bounds(&[(-1.0, 1.1), (-1.0, 1.1)]).unwrap();
        let _ = service.handle_request(
            Request::new(
                2,
                Command::Delta(crate::protocol::DeltaParams {
                    session: opened.session,
                    delta: DeltaEvent::DomainEnlarged(enlarged),
                }),
            ),
            &responder,
        );
        wait_for_responses(&rec, 2);
        let rs = rec.responses.lock().unwrap();
        let Reply::Verdict(v) = &rs[1].reply else { panic!("expected Verdict, got {:?}", rs[1]) };
        assert_eq!(rs[1].id, 2);
        assert_eq!(v.seq, 0);
        assert_eq!(v.record.outcome, "proved");
        assert_eq!(v.record.kind, "domain-enlarged");
    }

    #[test]
    fn closed_loop_session_opens_deltas_and_resumes() {
        use covern_closedloop::{AffinePlant, ClosedLoopSpec};
        use covern_tensor::Matrix;

        // `x' = 0.5·x + 0.25·u`, `u = -gain·x` realized as
        // relu(x) − relu(−x): contracting for gain 1, divergent for −4.
        let controller = |gain: f64| -> Network {
            NetworkBuilder::new(1)
                .dense_from_rows(&[&[1.0], &[-1.0]], &[0.0, 0.0], Activation::Relu)
                .dense_from_rows(&[&[-gain, gain]], &[0.0], Activation::Identity)
                .build()
                .unwrap()
        };
        let spec = ClosedLoopSpec {
            plant: AffinePlant::new(
                &Matrix::from_rows(&[&[0.5]]),
                &Matrix::from_rows(&[&[0.25]]),
                &[0.0],
            )
            .unwrap(),
            init: BoxDomain::from_bounds(&[(-0.5, 0.5)]).unwrap(),
            unsafe_region: BoxDomain::from_bounds(&[(0.9, 10.0)]).unwrap(),
            horizon: 8,
            max_generators: 12,
            sample_limit: 16,
        };
        let service = Service::new(ServiceConfig::default());
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();
        let params = OpenParams {
            label: "loop".into(),
            network: controller(1.0),
            din: spec.init.clone(),
            dout: spec.unsafe_region.clone(),
            domain: DomainKind::Zonotope,
            margin: Margin::NONE,
            closed_loop: Some(spec),
        };
        let _ = service.handle_request(Request::new(1, Command::Open(params)), &responder);
        let session = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Opened(o) = &rs[0].reply else { panic!("{:?}", rs[0]) };
            assert_eq!(o.outcome, "proved");
            o.session
        };
        // A destabilizing fine-tune delta flips the verdict to refuted.
        let _ = service.handle_request(
            Request::new(
                2,
                Command::Delta(crate::protocol::DeltaParams {
                    session,
                    delta: DeltaEvent::ModelUpdated(controller(-4.0)),
                }),
            ),
            &responder,
        );
        wait_for_responses(&rec, 2);
        {
            let rs = rec.responses.lock().unwrap();
            let Reply::Verdict(v) = &rs[1].reply else { panic!("{:?}", rs[1]) };
            assert_eq!(v.record.outcome, "refuted");
            assert_eq!(v.record.strategy, "closed-loop");
            assert!(v.record.witness.is_some(), "refutations carry a witness");
        }
        // Checkpoint → resume restores the tuned controller's verdict.
        let _ = service.handle_request(
            Request::new(3, Command::Checkpoint(crate::protocol::SessionRef { session })),
            &responder,
        );
        let state = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Checkpoint(c) = &rs[2].reply else { panic!("{:?}", rs[2]) };
            assert!(covern_closedloop::is_loop_checkpoint(&c.state));
            c.state.clone()
        };
        let _ = service.handle_request(
            Request::new(4, Command::Resume(ResumeParams { label: "loop-2".into(), state })),
            &responder,
        );
        let rs = rec.responses.lock().unwrap();
        let Reply::Opened(o) = &rs[3].reply else { panic!("{:?}", rs[3]) };
        assert_eq!(o.outcome, "refuted", "resume re-propagates the tuned tube");
    }

    #[test]
    fn busy_backpressure_when_inbox_full() {
        // One pool worker, occupied by a sleeper: queued deltas cannot
        // drain, so the second delta finds the capacity-1 inbox full.
        let service =
            Service::new(ServiceConfig { workers: 1, inbox_capacity: 1, ..Default::default() });
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();
        let _ =
            service.handle_request(Request::new(1, Command::Open(open_params("t"))), &responder);
        let session = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Opened(o) = &rs[0].reply else { panic!("open failed: {:?}", rs[0]) };
            o.session
        };
        service.pool.submit(|| std::thread::sleep(std::time::Duration::from_millis(150)));

        let delta = |id| {
            Request::new(
                id,
                Command::Delta(crate::protocol::DeltaParams {
                    session,
                    delta: DeltaEvent::DomainEnlarged(
                        BoxDomain::from_bounds(&[(-1.0, 1.05), (-1.0, 1.05)]).unwrap(),
                    ),
                }),
            )
        };
        let _ = service.handle_request(delta(2), &responder);
        let _ = service.handle_request(delta(3), &responder);
        // The second delta is answered immediately with Busy.
        wait_for_responses(&rec, 2);
        {
            let rs = rec.responses.lock().unwrap();
            let busy = rs.iter().find(|r| r.id == 3).expect("busy reply");
            let Reply::Busy(b) = &busy.reply else { panic!("expected Busy, got {busy:?}") };
            assert_eq!(b.capacity, 1);
            assert_eq!(b.pending, 1);
        }
        // Once the sleeper releases the worker, the queued delta drains.
        wait_for_responses(&rec, 3);
        let rs = rec.responses.lock().unwrap();
        let verdict = rs.iter().find(|r| r.id == 2).expect("verdict reply");
        assert!(matches!(verdict.reply, Reply::Verdict(_)), "got {verdict:?}");
    }

    #[test]
    fn unknown_session_and_malformed_lines_error_cleanly() {
        let service = Service::new(ServiceConfig::default());
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();
        let _ = service.handle_request(
            Request::new(
                5,
                Command::Delta(crate::protocol::DeltaParams {
                    session: 99,
                    delta: DeltaEvent::DomainEnlarged(
                        BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap(),
                    ),
                }),
            ),
            &responder,
        );
        let _ = service.handle_line("{\"id\": 7, \"v\":", &responder);
        let _ = service
            .handle_line("{\"v\":\"covern-protocol-v0\",\"id\":8,\"cmd\":\"Hello\"}", &responder);
        let rs = rec.responses.lock().unwrap();
        let Reply::Error(e) = &rs[0].reply else { panic!("{:?}", rs[0]) };
        assert_eq!(e.code, ErrorCode::UnknownSession);
        assert_eq!(rs[0].id, 5);
        let Reply::Error(e) = &rs[1].reply else { panic!("{:?}", rs[1]) };
        assert_eq!(e.code, ErrorCode::MalformedRequest);
        let Reply::Error(e) = &rs[2].reply else { panic!("{:?}", rs[2]) };
        assert_eq!(e.code, ErrorCode::UnsupportedVersion);
        assert_eq!(rs[2].id, 8);
    }

    #[test]
    fn malformed_problem_is_rejected_as_invalid() {
        let service = Service::new(ServiceConfig::default());
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();
        // Din arity 3 against a 2-input network.
        let mut params = open_params("bad");
        params.din = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).unwrap();
        let _ = service.handle_request(Request::new(1, Command::Open(params)), &responder);
        let rs = rec.responses.lock().unwrap();
        let Reply::Error(e) = &rs[0].reply else { panic!("{:?}", rs[0]) };
        assert_eq!(e.code, ErrorCode::InvalidProblem);
        assert_eq!(service.stats().sessions_open, 0);
    }

    #[test]
    fn checkpoint_resume_roundtrip_preserves_session_state() {
        let service = Service::new(ServiceConfig::default());
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();
        let _ =
            service.handle_request(Request::new(1, Command::Open(open_params("a"))), &responder);
        let session = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Opened(o) = &rs[0].reply else { panic!() };
            o.session
        };
        let _ = service.handle_request(
            Request::new(2, Command::Checkpoint(crate::protocol::SessionRef { session })),
            &responder,
        );
        let state = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Checkpoint(c) = &rs[1].reply else { panic!("{:?}", rs[1]) };
            c.state.clone()
        };
        let _ = service.handle_request(
            Request::new(3, Command::Resume(ResumeParams { label: "a-restored".into(), state })),
            &responder,
        );
        let rs = rec.responses.lock().unwrap();
        let Reply::Opened(o) = &rs[2].reply else { panic!("{:?}", rs[2]) };
        assert_eq!(o.outcome, "proved");
        assert_ne!(o.session, session, "resume registers a fresh session id");
        assert_eq!(service.stats().sessions_opened, 2);
    }

    #[test]
    fn shutdown_drains_queued_deltas_before_acknowledging() {
        let service = Service::new(ServiceConfig { workers: 2, ..Default::default() });
        let rec = Arc::new(RecordingResponder::default());
        let responder: Arc<dyn Respond> = rec.clone();
        let _ =
            service.handle_request(Request::new(1, Command::Open(open_params("t"))), &responder);
        let session = {
            let rs = rec.responses.lock().unwrap();
            let Reply::Opened(o) = &rs[0].reply else { panic!() };
            o.session
        };
        // Pipeline three deltas, then shut down immediately.
        for (i, hi) in [(2u64, 1.02), (3, 1.05), (4, 1.08)] {
            let _ = service.handle_request(
                Request::new(
                    i,
                    Command::Delta(crate::protocol::DeltaParams {
                        session,
                        delta: DeltaEvent::DomainEnlarged(
                            BoxDomain::from_bounds(&[(-1.0, hi), (-1.0, hi)]).unwrap(),
                        ),
                    }),
                ),
                &responder,
            );
        }
        let flow = service.handle_request(Request::new(9, Command::Shutdown), &responder);
        assert!(flow.is_break());
        let rs = rec.responses.lock().unwrap();
        // All three verdicts arrived, and the shutdown ack came last.
        assert_eq!(rs.len(), 5);
        for id in [2u64, 3, 4] {
            let r = rs.iter().find(|r| r.id == id).expect("verdict");
            assert!(matches!(r.reply, Reply::Verdict(_)), "id {id}: {r:?}");
        }
        assert!(matches!(rs.last().unwrap().reply, Reply::ShuttingDown));
        // New work is refused while (and after) draining.
        drop(rs);
        let _ = service
            .handle_request(Request::new(10, Command::Open(open_params("late"))), &responder);
        let rs = rec.responses.lock().unwrap();
        let Reply::Error(e) = &rs.last().unwrap().reply else { panic!() };
        assert_eq!(e.code, ErrorCode::ShuttingDown);
    }
}
