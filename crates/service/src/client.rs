//! A blocking `covern-protocol-v1` client, plus campaign-corpus replay.
//!
//! [`Client`] works over any reader/writer pair — a [`TcpStream`], a
//! spawned daemon's stdio, or an in-process pipe — and offers both the
//! low-level [`send`](Client::send)/[`recv`](Client::recv) pair (for
//! pipelining) and typed one-call helpers ([`open`](Client::open),
//! [`delta`](Client::delta), [`stats`](Client::stats), …) that
//! send-and-wait, stashing any out-of-order responses for later `recv`s.
//!
//! [`replay_corpus`] drives a whole campaign corpus through a client —
//! the load-testing bridge between `covern-campaign`'s seeded scenario
//! generator and a running daemon: spin up N threads with one client
//! each, hand every thread a slice of the corpus, and the daemon's
//! process-wide cache sees the same fine-tune-family sharing a local
//! campaign run would.

use crate::error::ServiceError;
use crate::protocol::{
    decode, encode, CheckpointState, Command, DeltaParams, OpenParams, Reply, Request, Response,
    ServerInfo, SessionOpened, SessionRef, SessionSummary, StatsSnapshot, VerdictEvent,
};
use covern_campaign::{DeltaEvent, Scenario};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client (see module docs).
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    /// Responses read while waiting for a different correlation id.
    stashed: Vec<Response>,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Self::over(Box::new(stream), Box::new(write_half)))
    }

    /// Builds a client over arbitrary transport halves (a child daemon's
    /// stdout/stdin, an in-process pipe, …).
    pub fn over(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Self {
        Self { reader: BufReader::new(reader), writer, next_id: 1, stashed: Vec::new() }
    }

    /// Sends a command and returns its correlation id without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] on write failure or
    /// [`ServiceError::Encode`] if the command does not serialize.
    pub fn send(&mut self, cmd: Command) -> Result<u64, ServiceError> {
        let id = self.next_id;
        self.next_id += 1;
        let line =
            encode(&Request::new(id, cmd)).map_err(|e| ServiceError::Encode(e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Reads the next response off the wire (stashed responses first).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] on EOF or read failure, and
    /// [`ServiceError::Encode`] on an unparseable line.
    pub fn recv(&mut self) -> Result<Response, ServiceError> {
        if !self.stashed.is_empty() {
            return Ok(self.stashed.remove(0));
        }
        self.read_wire()
    }

    fn read_wire(&mut self) -> Result<Response, ServiceError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ServiceError::Io("connection closed by server".into()));
            }
            if line.trim().is_empty() {
                continue;
            }
            return decode(&line).map_err(|e| ServiceError::Encode(e.to_string()));
        }
    }

    /// Reads until the response with correlation id `id` arrives, stashing
    /// every other response for later [`recv`](Self::recv)s.
    ///
    /// # Errors
    ///
    /// Propagates [`recv`](Self::recv) failures.
    pub fn wait_for(&mut self, id: u64) -> Result<Reply, ServiceError> {
        if let Some(i) = self.stashed.iter().position(|r| r.id == id) {
            return Ok(self.stashed.remove(i).reply);
        }
        loop {
            let response = self.read_wire()?;
            if response.id == id {
                return Ok(response.reply);
            }
            self.stashed.push(response);
        }
    }

    /// Sends a command and waits for its reply.
    ///
    /// # Errors
    ///
    /// Propagates [`send`](Self::send)/[`wait_for`](Self::wait_for)
    /// failures.
    pub fn request(&mut self, cmd: Command) -> Result<Reply, ServiceError> {
        let id = self.send(cmd)?;
        self.wait_for(id)
    }

    /// `Hello` round trip.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn hello(&mut self) -> Result<ServerInfo, ServiceError> {
        match self.request(Command::Hello)? {
            Reply::Hello(info) => Ok(info),
            other => Self::unexpected(other),
        }
    }

    /// Opens a session; blocks through the original verification.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply (e.g. an
    /// invalid problem), or transport failures.
    pub fn open(&mut self, params: OpenParams) -> Result<SessionOpened, ServiceError> {
        match self.request(Command::Open(params))? {
            Reply::Opened(o) => Ok(o),
            other => Self::unexpected(other),
        }
    }

    /// Re-opens a session from a checkpoint string.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn resume(&mut self, label: &str, state: String) -> Result<SessionOpened, ServiceError> {
        let params = crate::protocol::ResumeParams { label: label.to_owned(), state };
        match self.request(Command::Resume(params))? {
            Reply::Opened(o) => Ok(o),
            other => Self::unexpected(other),
        }
    }

    /// Streams one delta and waits for its verdict, retrying (with a short
    /// pause) while the session inbox answers `Busy`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply (unknown
    /// session, inapplicable delta), or transport failures.
    pub fn delta(&mut self, session: u64, delta: DeltaEvent) -> Result<VerdictEvent, ServiceError> {
        loop {
            let params = DeltaParams { session, delta: delta.clone() };
            match self.request(Command::Delta(params))? {
                Reply::Verdict(v) => return Ok(v),
                Reply::Busy(_) => std::thread::sleep(Duration::from_millis(5)),
                other => return Self::unexpected(other),
            }
        }
    }

    /// Checkpoints a session.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn checkpoint(&mut self, session: u64) -> Result<CheckpointState, ServiceError> {
        match self.request(Command::Checkpoint(SessionRef { session }))? {
            Reply::Checkpoint(c) => Ok(c),
            other => Self::unexpected(other),
        }
    }

    /// Fetches the process-wide counters.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServiceError> {
        match self.request(Command::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Self::unexpected(other),
        }
    }

    /// Fetches the process-wide metrics registry rendered as Prometheus
    /// text.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn metrics(&mut self) -> Result<crate::protocol::MetricsText, ServiceError> {
        match self.request(Command::Metrics)? {
            Reply::Metrics(m) => Ok(m),
            other => Self::unexpected(other),
        }
    }

    /// Closes a session and returns its summary.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn close(&mut self, session: u64) -> Result<SessionSummary, ServiceError> {
        match self.request(Command::Close(SessionRef { session }))? {
            Reply::Closed(s) => Ok(s),
            other => Self::unexpected(other),
        }
    }

    /// Asks the server to drain and stop; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Remote`] on an error reply, or transport
    /// failures.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        match self.request(Command::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Self::unexpected(other),
        }
    }

    fn unexpected<T>(reply: Reply) -> Result<T, ServiceError> {
        match reply {
            Reply::Error(e) => Err(ServiceError::Remote(e)),
            other => Err(ServiceError::UnexpectedReply(format!("{other:?}"))),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .field("stashed", &self.stashed.len())
            .finish()
    }
}

/// Tally of a corpus replay through a service client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Scenarios replayed (sessions opened and closed).
    pub scenarios: u64,
    /// Deltas streamed.
    pub deltas: u64,
    /// Verdicts that proved.
    pub proved: u64,
    /// Verdicts that refuted.
    pub refuted: u64,
    /// Verdicts that stayed unknown.
    pub unknown: u64,
}

/// Replays one campaign scenario through a client: open a session on the
/// scenario's original problem, stream its delta events in order, close.
///
/// # Errors
///
/// Propagates client/transport failures; a delta the session rejects
/// ([`ServiceError::Remote`]) aborts the scenario.
pub fn replay_scenario(
    client: &mut Client,
    scenario: &Scenario,
) -> Result<ReplayOutcome, ServiceError> {
    let opened = client.open(OpenParams {
        label: scenario.name.clone(),
        network: scenario.network.clone(),
        din: scenario.din.clone(),
        dout: scenario.dout.clone(),
        domain: scenario.domain,
        margin: scenario.margin,
        closed_loop: scenario.closed_loop.clone(),
    })?;
    let mut outcome = ReplayOutcome { scenarios: 1, ..ReplayOutcome::default() };
    for event in &scenario.events {
        let verdict = client.delta(opened.session, event.clone())?;
        outcome.deltas += 1;
        match verdict.record.outcome.as_str() {
            "proved" => outcome.proved += 1,
            "refuted" => outcome.refuted += 1,
            _ => outcome.unknown += 1,
        }
    }
    client.close(opened.session)?;
    Ok(outcome)
}

/// Replays a whole corpus sequentially through one client (run several
/// clients in parallel threads for load testing).
///
/// # Errors
///
/// Propagates the first scenario failure.
pub fn replay_corpus(
    client: &mut Client,
    corpus: &[Scenario],
) -> Result<ReplayOutcome, ServiceError> {
    let mut total = ReplayOutcome::default();
    for scenario in corpus {
        let one = replay_scenario(client, scenario)?;
        total.scenarios += one.scenarios;
        total.deltas += one.deltas;
        total.proved += one.proved;
        total.refuted += one.refuted;
        total.unknown += one.unknown;
    }
    Ok(total)
}
