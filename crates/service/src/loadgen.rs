//! The load generator: many concurrent sessions driven over TCP, with a
//! seeded, canonically-reportable outcome.
//!
//! [`run`] drives a seeded campaign corpus (one scenario per session)
//! through a running daemon from `connections` client threads, in three
//! phases per session:
//!
//! 1. **Open** — every session's original verification (open latency is
//!    sampled client-side);
//! 2. **Ordered deltas** — the scenario's event stream, strictly one
//!    in-flight delta per session (window 1), so per-session verdict
//!    order — and therefore every verdict — must match a single-session
//!    replay of the same scenario;
//! 3. **Burst** — `burst` copies of an *idempotent* delta (re-asserting
//!    the session's current `Din`, an equal-domain enlargement) pipelined
//!    back-to-back without waiting. Identical deltas commute, so this
//!    phase may legally provoke `Busy` bounces and out-of-order retries
//!    without ever changing a verdict — it exercises the backpressure
//!    seam while staying inside the determinism contract.
//!
//! Closing each session cross-checks the server's lifetime tally against
//! the client-side count: a lost or duplicated verdict fails the run.
//!
//! # Determinism
//!
//! The corpus is a pure function of the seed, the per-session verdict
//! sequence is schedule-independent (the repo's core invariant), and the
//! totals are sums over sessions — so [`LoadReport::canonical_json`] is
//! byte-identical for any `connections` count and any interleaving.
//! Timing (`latency_us`, `wall_us`) and contention (`busy_replies`,
//! `retries`) are *measurements*, not outcomes; the canonical render
//! zeroes them and keeps only the schedule-independent remainder.

use crate::client::Client;
use crate::error::ServiceError;
use crate::protocol::OpenParams;
use covern_campaign::corpus::{generate, CorpusConfig};
use covern_campaign::{DeltaEvent, Scenario};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Report format tag.
pub const LOADGEN_REPORT_FORMAT: &str = "covern-loadgen-report-v1";

/// Load-generator shape (echoed verbatim into the report).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenConfig {
    /// Concurrent sessions (one corpus scenario each).
    pub sessions: usize,
    /// Client connections (threads); sessions are dealt round-robin.
    pub connections: usize,
    /// Ordered delta events per session.
    pub events_per_session: usize,
    /// Distinct base-model families in the corpus.
    pub families: usize,
    /// Pipelined idempotent deltas per session in the burst phase.
    pub burst: usize,
    /// Sustained arrival rate: session `i` is not started before
    /// `i / qps` seconds into the run, turning the all-at-once stampede
    /// into open/close churn at a steady rate. `0` disables pacing.
    /// Pacing decides *when* work arrives, never what the verdicts are.
    pub qps: u64,
    /// Master seed; the whole run's canonical outcome is a pure function
    /// of this config.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            sessions: 50,
            connections: 8,
            events_per_session: 3,
            families: 5,
            burst: 4,
            qps: 0,
            seed: 2021,
        }
    }
}

/// Latency percentiles over one kind of sample, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
    /// Worst sample.
    pub max_us: u64,
    /// Sample count.
    pub samples: u64,
}

impl LatencyStats {
    fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pick = |q: f64| samples[(((n - 1) as f64) * q).round() as usize];
        Self {
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            mean_us: samples.iter().sum::<u64>() / n as u64,
            max_us: *samples.last().expect("non-empty"),
            samples: n as u64,
        }
    }
}

/// A per-phase latency histogram in microseconds. Bucket bounds mirror
/// the process-wide Prometheus histogram
/// ([`covern_observe::metrics::LATENCY_BUCKETS`], converted to µs):
/// `counts[i]` holds the samples `≤ bounds_us[i]`, with one final
/// overflow bucket (`counts.len() == bounds_us.len() + 1`). The counts
/// are measurements — the canonical report zeroes them but keeps the
/// phase names and bounds, so the report *shape* stays pinned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseLatency {
    /// Which request phase was sampled (`open`, `verdict`, `close`).
    pub phase: String,
    /// Inclusive upper bucket bounds, ascending.
    pub bounds_us: Vec<u64>,
    /// Per-bucket sample counts (last entry = overflow).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum_us / count`).
    pub sum_us: u64,
}

impl PhaseLatency {
    fn from_samples(phase: &str, samples: &[u64]) -> Self {
        let bounds_us: Vec<u64> = covern_observe::metrics::LATENCY_BUCKETS
            .iter()
            .map(|s| (s * 1_000_000.0) as u64)
            .collect();
        let mut counts = vec![0u64; bounds_us.len() + 1];
        let mut sum_us = 0u64;
        for &sample in samples {
            sum_us += sample;
            counts[bounds_us.partition_point(|&b| b < sample)] += 1;
        }
        Self { phase: phase.to_owned(), bounds_us, counts, count: samples.len() as u64, sum_us }
    }

    fn zeroed(&self) -> Self {
        Self { counts: vec![0; self.counts.len()], count: 0, sum_us: 0, ..self.clone() }
    }
}

/// Schedule-independent totals over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadTotals {
    /// Sessions opened and closed.
    pub sessions: u64,
    /// Ordered deltas streamed (phase 2).
    pub ordered_deltas: u64,
    /// Burst deltas streamed (phase 3).
    pub burst_deltas: u64,
    /// Verdicts received (must equal `ordered_deltas + burst_deltas`).
    pub verdicts: u64,
    /// Verdicts that proved.
    pub proved: u64,
    /// Verdicts that refuted.
    pub refuted: u64,
    /// Verdicts that stayed unknown.
    pub unknown: u64,
    /// Scenario failures (transport or server errors); nonzero fails the
    /// run.
    pub errors: u64,
}

/// Backpressure accounting (schedule-*dependent* except `recovered`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backpressure {
    /// `Busy` replies observed across both delta phases.
    pub busy_replies: u64,
    /// Deltas re-sent after a `Busy` bounce.
    pub retries: u64,
    /// Whether every bounced delta eventually produced its verdict (and
    /// no verdict was lost); schedule-independent — `true` on any
    /// successful run.
    pub recovered: bool,
}

/// The load generator's report (`covern-loadgen-report-v1`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Format tag ([`LOADGEN_REPORT_FORMAT`]).
    pub format: String,
    /// The configuration that produced this run.
    pub config: LoadgenConfig,
    /// Schedule-independent totals.
    pub totals: LoadTotals,
    /// Session-open latency (measurement; zeroed in canonical output).
    pub open_latency: LatencyStats,
    /// Per-verdict latency as seen by the client (measurement; zeroed in
    /// canonical output).
    pub verdict_latency: LatencyStats,
    /// Per-phase latency histograms, one per request phase in
    /// open/verdict/close order (measurements; counts zeroed in
    /// canonical output, phase names and bucket bounds kept).
    pub phase_latency: Vec<PhaseLatency>,
    /// `Busy`/retry accounting.
    pub backpressure: Backpressure,
    /// Wall-clock of the whole run (measurement; zeroed in canonical
    /// output).
    pub wall_us: u64,
    /// One string per corpus scenario, one char per ordered verdict
    /// (`P`/`R`/`U`), then `.` and one char per burst verdict. Index =
    /// scenario index, so the vector is partition-independent.
    pub outcome_codes: Vec<String>,
}

impl LoadReport {
    /// The full report as one JSON line (includes measurements).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Encode`] if serialization fails.
    pub fn to_json(&self) -> Result<String, ServiceError> {
        serde_json::to_string(self).map_err(|e| ServiceError::Encode(e.to_string()))
    }

    /// The canonical report: measurements (latency, wall clock, busy and
    /// retry counts) zeroed, everything schedule-independent kept. The
    /// `connections` and `qps` knobs are zeroed too — they decide *how*
    /// the corpus is driven, never what the verdicts are, so they are
    /// not part of the canonical identity. Byte-identical across
    /// connection counts, pacing rates and schedules for a fixed seed
    /// and corpus shape.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Encode`] if serialization fails.
    pub fn canonical_json(&self) -> Result<String, ServiceError> {
        let mut canonical = self.clone();
        canonical.config.connections = 0;
        canonical.config.qps = 0;
        canonical.open_latency = LatencyStats::default();
        canonical.verdict_latency = LatencyStats::default();
        canonical.phase_latency = self.phase_latency.iter().map(PhaseLatency::zeroed).collect();
        canonical.wall_us = 0;
        canonical.backpressure.busy_replies = 0;
        canonical.backpressure.retries = 0;
        canonical.to_json()
    }

    /// Whether the run met the load generator's bar: no errors, every
    /// delta answered (no lost verdicts), and the burst phase recovered.
    pub fn passed(&self) -> bool {
        self.totals.errors == 0
            && self.backpressure.recovered
            && self.totals.verdicts == self.totals.ordered_deltas + self.totals.burst_deltas
    }
}

/// One session's outcome, reported back to the aggregator.
struct SessionResult {
    scenario_index: usize,
    outcome_code: String,
    ordered: u64,
    burst: u64,
    proved: u64,
    refuted: u64,
    unknown: u64,
    busy_replies: u64,
    retries: u64,
    open_us: u64,
    close_us: u64,
    verdict_us: Vec<u64>,
    /// Server-side summary mismatch or transport failure.
    error: Option<String>,
}

fn outcome_char(outcome: &str) -> char {
    match outcome {
        "proved" => 'P',
        "refuted" => 'R',
        _ => 'U',
    }
}

/// The burst phase's idempotent delta: re-assert the domain the session
/// holds after its ordered events (its last enlargement, or the original
/// `Din`). An equal-domain enlargement is accepted and commutes with
/// itself, so any server-side reordering of retries is invisible.
fn burst_delta(scenario: &Scenario) -> DeltaEvent {
    let last = scenario
        .events
        .iter()
        .rev()
        .find_map(|e| match e {
            DeltaEvent::DomainEnlarged(b) => Some(b.clone()),
            _ => None,
        })
        .unwrap_or_else(|| scenario.din.clone());
    DeltaEvent::DomainEnlarged(last)
}

/// Drives one scenario through `client` (all three phases; see module
/// docs). Returns per-session accounting; protocol errors are captured
/// in [`SessionResult::error`] rather than aborting the other sessions
/// on this connection.
fn drive_session(
    client: &mut Client,
    scenario_index: usize,
    scenario: &Scenario,
    burst: usize,
) -> SessionResult {
    let mut result = SessionResult {
        scenario_index,
        outcome_code: String::new(),
        ordered: 0,
        burst: 0,
        proved: 0,
        refuted: 0,
        unknown: 0,
        busy_replies: 0,
        retries: 0,
        open_us: 0,
        close_us: 0,
        verdict_us: Vec::new(),
        error: None,
    };
    fn tally(outcome: &str, result: &mut SessionResult) {
        result.outcome_code.push(outcome_char(outcome));
        match outcome_char(outcome) {
            'P' => result.proved += 1,
            'R' => result.refuted += 1,
            _ => result.unknown += 1,
        }
    }

    // Phase 1: open.
    let t0 = Instant::now();
    let opened = match client.open(OpenParams {
        label: scenario.name.clone(),
        network: scenario.network.clone(),
        din: scenario.din.clone(),
        dout: scenario.dout.clone(),
        domain: scenario.domain,
        margin: scenario.margin,
        closed_loop: scenario.closed_loop.clone(),
    }) {
        Ok(o) => o,
        Err(e) => {
            result.error = Some(format!("open: {e}"));
            return result;
        }
    };
    result.open_us = t0.elapsed().as_micros() as u64;

    // Phase 2: ordered deltas, window 1 (never Busy-bounced out of order:
    // a bounced delta is retried before the next is sent).
    for event in &scenario.events {
        let t = Instant::now();
        match delta_with_retry(client, opened.session, event, &mut result) {
            Ok(outcome) => {
                result.verdict_us.push(t.elapsed().as_micros() as u64);
                result.ordered += 1;
                tally(&outcome, &mut result);
            }
            Err(e) => {
                result.error = Some(format!("delta: {e}"));
                return result;
            }
        }
    }

    // Phase 3: pipelined idempotent burst.
    let delta = burst_delta(scenario);
    let mut pending = Vec::with_capacity(burst);
    let t_burst = Instant::now();
    for _ in 0..burst {
        match client.send(crate::protocol::Command::Delta(crate::protocol::DeltaParams {
            session: opened.session,
            delta: delta.clone(),
        })) {
            Ok(id) => pending.push(id),
            Err(e) => {
                result.error = Some(format!("burst send: {e}"));
                return result;
            }
        }
    }
    for id in pending {
        match collect_burst_reply(client, id, opened.session, &delta, &mut result) {
            Ok(outcome) => {
                result.verdict_us.push(t_burst.elapsed().as_micros() as u64);
                result.burst += 1;
                tally(&outcome, &mut result);
            }
            Err(e) => {
                result.error = Some(format!("burst: {e}"));
                return result;
            }
        }
    }

    // Close and cross-check: the server's lifetime tally must equal what
    // this client counted, or a verdict was lost or duplicated.
    let t_close = Instant::now();
    match client.close(opened.session) {
        Ok(summary) => {
            let expected = result.ordered + result.burst;
            if summary.deltas != expected
                || summary.proved != result.proved
                || summary.refuted != result.refuted
                || summary.unknown != result.unknown
            {
                result.error = Some(format!(
                    "summary mismatch: server saw {}/{}/{}/{} (deltas/P/R/U), client counted \
                     {}/{}/{}/{}",
                    summary.deltas,
                    summary.proved,
                    summary.refuted,
                    summary.unknown,
                    expected,
                    result.proved,
                    result.refuted,
                    result.unknown
                ));
            }
        }
        Err(e) => result.error = Some(format!("close: {e}")),
    }
    result.close_us = t_close.elapsed().as_micros() as u64;
    result
}

/// Sends one delta and waits for its verdict, retrying on `Busy` and
/// counting the bounces.
fn delta_with_retry(
    client: &mut Client,
    session: u64,
    event: &DeltaEvent,
    result: &mut SessionResult,
) -> Result<String, ServiceError> {
    loop {
        let params = crate::protocol::DeltaParams { session, delta: event.clone() };
        match client.request(crate::protocol::Command::Delta(params))? {
            crate::protocol::Reply::Verdict(v) => return Ok(v.record.outcome),
            crate::protocol::Reply::Busy(_) => {
                result.busy_replies += 1;
                result.retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            crate::protocol::Reply::Error(e) => return Err(ServiceError::Remote(e)),
            other => return Err(ServiceError::UnexpectedReply(format!("{other:?}"))),
        }
    }
}

/// Waits out one burst reply; a `Busy` bounce re-sends the (idempotent)
/// delta under a fresh id until it lands.
fn collect_burst_reply(
    client: &mut Client,
    id: u64,
    session: u64,
    delta: &DeltaEvent,
    result: &mut SessionResult,
) -> Result<String, ServiceError> {
    let mut id = id;
    loop {
        match client.wait_for(id)? {
            crate::protocol::Reply::Verdict(v) => return Ok(v.record.outcome),
            crate::protocol::Reply::Busy(_) => {
                result.busy_replies += 1;
                result.retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
                id =
                    client.send(crate::protocol::Command::Delta(crate::protocol::DeltaParams {
                        session,
                        delta: delta.clone(),
                    }))?;
            }
            crate::protocol::Reply::Error(e) => return Err(ServiceError::Remote(e)),
            other => return Err(ServiceError::UnexpectedReply(format!("{other:?}"))),
        }
    }
}

/// Runs the load generator against a daemon at `addr` (see module docs).
/// Opens `config.connections` TCP connections and drives
/// `config.sessions` sessions across them.
///
/// # Errors
///
/// Returns [`ServiceError`] if corpus generation fails or a connection
/// cannot be established; per-session protocol failures are *recorded*
/// (`totals.errors`) rather than propagated, so one bad session never
/// hides the rest of the run.
pub fn run(addr: &str, config: &LoadgenConfig) -> Result<LoadReport, ServiceError> {
    let corpus = generate(&CorpusConfig {
        scenarios: config.sessions,
        families: config.families.max(1),
        events_per_scenario: config.events_per_session,
        seed: config.seed,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .map_err(|e| ServiceError::Encode(format!("corpus generation: {e}")))?;

    let connections = config.connections.max(1);
    let t0 = Instant::now();
    let results: Mutex<Vec<SessionResult>> = Mutex::new(Vec::with_capacity(corpus.len()));
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for worker in 0..connections {
            let corpus = &corpus;
            let results = &results;
            let failures = &failures;
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        failures.lock().expect("failure list").push(format!("connect: {e}"));
                        return;
                    }
                };
                // Round-robin partition: worker w drives scenarios
                // w, w+connections, w+2·connections, …
                for (index, scenario) in corpus.iter().enumerate().skip(worker).step_by(connections)
                {
                    // Sustained-rate pacing: session i may not start
                    // before i/qps seconds into the run, whatever
                    // connection it landed on — arrival order and rate
                    // are properties of the corpus, not the partition.
                    if let Some(gap_us) = (1_000_000 * index as u64).checked_div(config.qps) {
                        let target = std::time::Duration::from_micros(gap_us);
                        let elapsed = t0.elapsed();
                        if target > elapsed {
                            std::thread::sleep(target - elapsed);
                        }
                    }
                    let r = drive_session(&mut client, index, scenario, config.burst);
                    results.lock().expect("result list").push(r);
                }
            });
        }
    });

    let wall_us = t0.elapsed().as_micros() as u64;
    let results = results.into_inner().expect("result list");
    let failures = failures.into_inner().expect("failure list");

    let mut totals = LoadTotals { errors: failures.len() as u64, ..LoadTotals::default() };
    let mut backpressure = Backpressure { recovered: true, ..Backpressure::default() };
    let mut open_samples = Vec::with_capacity(results.len());
    let mut close_samples = Vec::with_capacity(results.len());
    let mut verdict_samples = Vec::new();
    let mut outcome_codes = vec![String::new(); corpus.len()];
    for r in &results {
        totals.sessions += 1;
        totals.ordered_deltas += r.ordered;
        totals.burst_deltas += r.burst;
        totals.verdicts += r.ordered + r.burst;
        totals.proved += r.proved;
        totals.refuted += r.refuted;
        totals.unknown += r.unknown;
        backpressure.busy_replies += r.busy_replies;
        backpressure.retries += r.retries;
        open_samples.push(r.open_us);
        close_samples.push(r.close_us);
        verdict_samples.extend_from_slice(&r.verdict_us);
        outcome_codes[r.scenario_index] = format!(
            "{}.{}",
            &r.outcome_code[..r.ordered as usize],
            &r.outcome_code[r.ordered as usize..]
        );
        if let Some(e) = &r.error {
            totals.errors += 1;
            covern_observe::obs_warn!(
                "loadgen session failed",
                scenario = r.scenario_index,
                error = e
            );
        }
    }
    backpressure.recovered = totals.errors == 0
        && totals.verdicts == totals.ordered_deltas + totals.burst_deltas
        && totals.sessions == corpus.len() as u64;

    let phase_latency = vec![
        PhaseLatency::from_samples("open", &open_samples),
        PhaseLatency::from_samples("verdict", &verdict_samples),
        PhaseLatency::from_samples("close", &close_samples),
    ];
    Ok(LoadReport {
        format: LOADGEN_REPORT_FORMAT.to_owned(),
        config: config.clone(),
        totals,
        open_latency: LatencyStats::from_samples(&mut open_samples),
        verdict_latency: LatencyStats::from_samples(&mut verdict_samples),
        phase_latency,
        backpressure,
        wall_us,
        outcome_codes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_pick_percentiles() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::from_samples(&mut samples);
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.samples, 100);
        let mut empty = Vec::new();
        assert_eq!(LatencyStats::from_samples(&mut empty), LatencyStats::default());
    }

    #[test]
    fn zero_completed_ops_yield_zero_stats_not_a_panic() {
        // A run where no operation completed (e.g. every session was
        // refused) hands an empty sample set to every percentile; the
        // stats must come back all-zero instead of indexing into nothing.
        let stats = LatencyStats::from_samples(&mut []);
        assert_eq!(stats.p50_us, 0);
        assert_eq!(stats.p99_us, 0);
        assert_eq!(stats.mean_us, 0);
        assert_eq!(stats.max_us, 0);
        assert_eq!(stats.samples, 0);
        // One completed op is the smallest case where `pick` indexes:
        // every percentile collapses onto the single sample.
        let one = LatencyStats::from_samples(&mut [42]);
        assert_eq!((one.p50_us, one.p99_us, one.max_us, one.samples), (42, 42, 42, 1));
    }

    #[test]
    fn canonical_json_zeroes_measurements_only() {
        let report = LoadReport {
            format: LOADGEN_REPORT_FORMAT.into(),
            config: LoadgenConfig::default(),
            totals: LoadTotals { sessions: 2, verdicts: 6, ..Default::default() },
            open_latency: LatencyStats { p50_us: 10, samples: 2, ..Default::default() },
            verdict_latency: LatencyStats { p99_us: 99, samples: 6, ..Default::default() },
            phase_latency: vec![
                PhaseLatency::from_samples("open", &[150, 2_000]),
                PhaseLatency::from_samples("verdict", &[90, 90, 90, 400, 400, 400]),
                PhaseLatency::from_samples("close", &[10, 20]),
            ],
            backpressure: Backpressure { busy_replies: 3, retries: 3, recovered: true },
            wall_us: 12345,
            outcome_codes: vec!["PPU.PP".into(), "PRP.UU".into()],
        };
        let canonical = report.canonical_json().unwrap();
        assert!(!canonical.contains("12345"));
        let parsed: LoadReport = serde_json::from_str(&canonical).unwrap();
        assert_eq!(parsed.open_latency, LatencyStats::default());
        assert_eq!(parsed.config.connections, 0, "parallelism is not canonical identity");
        assert_eq!(parsed.backpressure.busy_replies, 0);
        assert!(parsed.backpressure.recovered, "recovered is an outcome, not a measurement");
        assert_eq!(parsed.totals.verdicts, 6);
        assert_eq!(parsed.outcome_codes, vec!["PPU.PP".to_owned(), "PRP.UU".to_owned()]);
        assert_eq!(parsed.config.qps, 0, "pacing is not canonical identity");
        // Histogram *counts* are measurements; the shape stays pinned.
        assert_eq!(parsed.phase_latency.len(), 3);
        for (phase, original) in parsed.phase_latency.iter().zip(&report.phase_latency) {
            assert_eq!(phase.phase, original.phase);
            assert_eq!(phase.bounds_us, original.bounds_us);
            assert_eq!(phase.count, 0);
            assert_eq!(phase.sum_us, 0);
            assert!(phase.counts.iter().all(|&c| c == 0));
            assert_eq!(phase.counts.len(), phase.bounds_us.len() + 1);
        }
    }

    #[test]
    fn phase_histograms_bucket_by_upper_bound_with_overflow() {
        // Bounds start at 100 µs (observe's 1e-4 s bucket); a 100 µs
        // sample sits in bucket 0 (bounds are inclusive upper limits), a
        // 101 µs sample in bucket 1, and anything past the last bound
        // (10 s) lands in the overflow slot.
        let h = PhaseLatency::from_samples("open", &[100, 101, 50, 20_000_000]);
        assert_eq!(h.phase, "open");
        assert_eq!(h.bounds_us[0], 100);
        assert_eq!(h.counts[0], 2, "50 and 100 are both ≤ the first bound");
        assert_eq!(h.counts[1], 1);
        assert_eq!(*h.counts.last().unwrap(), 1, "20 s overflows the 10 s top bound");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum_us, 100 + 101 + 50 + 20_000_000);
        assert_eq!(h.counts.iter().sum::<u64>(), h.count, "every sample lands in one bucket");
    }

    #[test]
    fn burst_delta_is_last_enlargement_or_din() {
        let corpus = generate(&CorpusConfig {
            scenarios: 2,
            families: 1,
            events_per_scenario: 4,
            seed: 7,
            include_vehicle: false,
            include_closed_loop: false,
        })
        .unwrap();
        for scenario in &corpus {
            let DeltaEvent::DomainEnlarged(b) = burst_delta(scenario) else {
                panic!("burst delta must be an enlargement");
            };
            let expected = scenario
                .events
                .iter()
                .rev()
                .find_map(|e| match e {
                    DeltaEvent::DomainEnlarged(x) => Some(x.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| scenario.din.clone());
            assert_eq!(b, expected);
        }
    }
}
