//! Sharded multi-worker verification cluster.
//!
//! One coordinator, N worker daemons (each an ordinary `covern_cli
//! serve` process), and nothing clever on the wire: the cluster layer is
//! pure orchestration over `covern-protocol-v1`.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`ring`] | consistent-hash ring (proof-family key → worker) |
//! | [`store`] | coordinator-level content-addressed disk store |
//! | [`worker`] | worker daemon handles + the deadline-aware wire client |
//! | [`health`] | background ping monitor |
//! | [`router`] | the coordinator: sharding, failover, report assembly |
//!
//! Dataflow: `run_campaign` splits its thread budget exactly like the
//! single-process engine, drivers pull scenarios off a shared queue,
//! each scenario routes by the consistent hash of its proof-family key
//! to one worker and runs there as one protocol session (open → deltas →
//! close), checkpointing into the [`store::DiskStore`] as it goes. A
//! worker fault (connect refused, reply deadline blown, connection
//! dropped, garbage bytes) retires the worker and resumes the session
//! from its checkpoint on the next ring owner. The differential suite
//! pins the headline invariant: canonical campaign reports are
//! byte-identical across single-process, 1-worker and N-worker runs.

pub mod health;
pub mod ring;
pub mod router;
pub mod store;
pub mod worker;

pub use health::HealthMonitor;
pub use ring::HashRing;
pub use router::{Cluster, ClusterConfig, KillAfter, CHECKPOINT_EVERY};
pub use store::DiskStore;
pub use worker::{WireClient, WireFault, WorkerHandle};
