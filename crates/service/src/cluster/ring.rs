//! Consistent-hash ring for scenario → worker placement.
//!
//! Placement is keyed by the 128-bit **proof-family key** of a scenario's
//! original problem (see `covern_campaign::proof_family_key`): every full
//! verification two scenarios could ever share has equal full-verify keys,
//! equal full-verify keys imply equal family keys, and equal family keys
//! land on the same ring point — so family-key routing partitions the
//! full-verify key space across workers. That is what keeps per-worker
//! cache hit/miss counts summable to the single-process numbers, and what
//! keeps fine-tune siblings (the warm-start beneficiaries) on one daemon.
//!
//! The ring is the classic virtual-node construction: each worker owns
//! [`VNODES`] pseudo-random points on a `u64` circle; a key routes to the
//! owner of the first point clockwise from the key's own position. Adding
//! or removing one worker therefore remaps only the arcs adjacent to its
//! points — about `1/n` of the key space (asserted by proptest) — so a
//! worker death does not reshuffle every surviving worker's cache
//! locality.

/// Virtual nodes per worker. 64 points keep the per-worker share of the
/// circle within a few percent of `1/n` for small clusters without making
/// ring construction measurable.
pub const VNODES: usize = 64;

/// SplitMix64: a full-period bijective mixer; cheap, and statistically
/// strong enough that worker points interleave uniformly on the circle.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Position of a placement key on the circle.
fn key_point(key: u128) -> u64 {
    mix64((key >> 64) as u64 ^ mix64(key as u64))
}

/// Position of one virtual node on the circle.
fn vnode_point(worker: usize, replica: usize) -> u64 {
    mix64(((worker as u64) << 32) ^ replica as u64 ^ 0x5eed_c0de_u64)
}

/// A consistent-hash ring over worker indices (see module docs).
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(point, worker)` sorted by point — the circle, flattened.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A ring populated with workers `0..n`.
    #[must_use]
    pub fn with_workers(n: usize) -> Self {
        let mut ring = Self::new();
        for w in 0..n {
            ring.insert(w);
        }
        ring
    }

    /// Adds a worker's virtual nodes (idempotent).
    pub fn insert(&mut self, worker: usize) {
        if self.points.iter().any(|&(_, w)| w == worker) {
            return;
        }
        for replica in 0..VNODES {
            self.points.push((vnode_point(worker, replica), worker));
        }
        // Point collisions across workers are possible in principle; the
        // sort's (point, worker) order keeps ownership deterministic.
        self.points.sort_unstable();
    }

    /// Removes a worker's virtual nodes (idempotent).
    pub fn remove(&mut self, worker: usize) {
        self.points.retain(|&(_, w)| w != worker);
    }

    /// Number of distinct workers on the ring.
    #[must_use]
    pub fn workers(&self) -> usize {
        let mut seen: Vec<usize> = self.points.iter().map(|&(_, w)| w).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Whether the ring has no workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The worker owning `key`: the first virtual node clockwise from the
    /// key's position. `None` on an empty ring. A pure function of
    /// `(ring contents, key)` — routing never depends on request order.
    #[must_use]
    pub fn route(&self, key: u128) -> Option<usize> {
        self.route_live(key, |_| true)
    }

    /// Like [`route`](Self::route), but skips workers for which `alive`
    /// returns `false`: the key's arc falls through to the next live
    /// owner clockwise, which is exactly the consistent-hash failover
    /// property — a dead worker's keys spread over its ring neighbours
    /// while everyone else's placement is untouched.
    pub fn route_live(&self, key: u128, alive: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let pos = key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        // Walk at most one full turn; distinct workers repeat, so remember
        // what we already rejected only implicitly (alive is cheap).
        for i in 0..self.points.len() {
            let (_, w) = self.points[(start + i) % self.points.len()];
            if alive(w) {
                return Some(w);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nowhere() {
        assert_eq!(HashRing::new().route(42), None);
        assert!(HashRing::new().is_empty());
    }

    #[test]
    fn single_worker_owns_everything() {
        let ring = HashRing::with_workers(1);
        for k in 0..1000u128 {
            assert_eq!(ring.route(k * 0x1234_5678_9abc), Some(0));
        }
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let ring = HashRing::with_workers(4);
        let mut counts = [0usize; 4];
        for k in 0..4000u128 {
            let w = ring.route(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)).unwrap();
            assert_eq!(ring.route(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(w));
            counts[w] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            assert!(c > 400, "worker {w} owns only {c}/4000 keys");
        }
    }

    #[test]
    fn dead_worker_keys_fail_over_but_live_placement_is_stable() {
        let ring = HashRing::with_workers(3);
        for k in 0..500u128 {
            let key = k.wrapping_mul(0x517c_c1b7_2722_0a95);
            let primary = ring.route(key).unwrap();
            let rerouted = ring.route_live(key, |w| w != primary).unwrap();
            assert_ne!(rerouted, primary);
            // Keys not owned by the dead worker keep their placement.
            if primary != 0 {
                assert_eq!(ring.route_live(key, |w| w != 0), Some(primary));
            }
        }
    }

    #[test]
    fn insert_is_idempotent_and_remove_inverts_it() {
        let mut ring = HashRing::with_workers(2);
        let before: Vec<_> = (0..64u128).map(|k| ring.route(k * 7919)).collect();
        ring.insert(1);
        let after: Vec<_> = (0..64u128).map(|k| ring.route(k * 7919)).collect();
        assert_eq!(before, after);
        ring.insert(2);
        ring.remove(2);
        let restored: Vec<_> = (0..64u128).map(|k| ring.route(k * 7919)).collect();
        assert_eq!(before, restored);
        assert_eq!(ring.workers(), 2);
    }
}
