//! Worker daemons and the coordinator's deadline-aware wire client.
//!
//! A cluster worker is an ordinary `covern_cli serve` process speaking
//! `covern-protocol-v1` over TCP — the cluster layer adds nothing to the
//! daemon itself. [`WorkerHandle`] either spawns one (port 0, address
//! parsed from the daemon's startup line) or wraps an externally managed
//! address (used by the fault-injection tests to stand up deliberately
//! slow or garbage-speaking workers).
//!
//! [`WireClient`] is the coordinator's own client rather than
//! [`crate::client::Client`] because fault detection needs what the
//! polite client lacks: a read deadline on every reply. Every failure is
//! classified by [`WireFault`] so the router can tell a *worker* fault
//! (connect/timeout/disconnect/garbage → mark dead, reroute, replay)
//! from a *session* fault reported by a healthy worker (`DeltaFailed`
//! etc. → record the scenario error exactly like the single-process
//! engine).

use crate::protocol::{
    decode, encode, Command, DeltaParams, ErrorInfo, OpenParams, Reply, Request, ResumeParams,
    SessionOpened, SessionRef, StatsSnapshot,
};
use covern_campaign::report::EventRecord;
use covern_campaign::DeltaEvent;
use covern_observe::{metrics, obs_info, obs_warn};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How a coordinator request failed.
#[derive(Debug, Clone)]
pub enum WireFault {
    /// Could not connect to the worker at all.
    Connect(String),
    /// The per-request deadline elapsed with no reply.
    Timeout,
    /// The connection dropped mid-request (worker death shows up here).
    Disconnected,
    /// The worker replied with bytes that do not decode, or with a reply
    /// variant the request cannot accept.
    Malformed(String),
    /// A healthy worker reported a protocol-level error; the session —
    /// not the worker — is at fault.
    Remote(ErrorInfo),
}

impl WireFault {
    /// Whether this failure indicts the *worker* (reroute + replay)
    /// rather than the session.
    #[must_use]
    pub fn is_worker_fault(&self) -> bool {
        !matches!(self, WireFault::Remote(_))
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFault::Connect(e) => write!(f, "connect failed: {e}"),
            WireFault::Timeout => write!(f, "deadline elapsed"),
            WireFault::Disconnected => write!(f, "connection lost"),
            WireFault::Malformed(e) => write!(f, "malformed reply: {e}"),
            WireFault::Remote(e) => write!(f, "remote error [{}]: {}", e.code, e.message),
        }
    }
}

/// Everything needed to spawn (or re-spawn) a worker daemon process.
///
/// Kept by [`WorkerHandle::spawn`]ed workers so the health monitor can
/// launch a replacement after a retirement; external workers carry none
/// and are never respawned.
#[derive(Debug, Clone)]
pub struct SpawnSpec {
    binary: std::path::PathBuf,
    session_threads: usize,
    splits: usize,
}

/// One worker daemon as the coordinator sees it: an address, a liveness
/// flag, and — when the coordinator spawned it — the child process plus
/// the spec needed to spawn a replacement.
#[derive(Debug)]
pub struct WorkerHandle {
    index: usize,
    /// Current TCP address; replaced wholesale on respawn (the daemon
    /// binds port 0, so every incarnation gets a fresh port).
    addr: Mutex<String>,
    alive: AtomicBool,
    child: Mutex<Option<Child>>,
    stderr_drain: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// `Some` for coordinator-spawned workers (respawnable), `None` for
    /// external ones.
    spawn_spec: Option<SpawnSpec>,
}

/// Launches one `serve` daemon and parses its bound address, returning the
/// pieces a [`WorkerHandle`] tracks.
fn launch_daemon(
    index: usize,
    spec: &SpawnSpec,
) -> std::io::Result<(Child, String, std::thread::JoinHandle<()>)> {
    let mut child = ProcessCommand::new(&spec.binary)
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--refine-strategy",
            "refine",
            "--splits",
            &spec.splits.to_string(),
            "--session-threads",
            &spec.session_threads.to_string(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let mut reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("worker {index} exited before announcing its address"),
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("covern-service listening on ") {
            break rest.to_owned();
        }
    };
    let drain = std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
    });
    Ok((child, addr, drain))
}

impl WorkerHandle {
    /// Spawns `binary serve --tcp 127.0.0.1:0 ...` and parses the bound
    /// address from the daemon's startup line on stderr. The rest of the
    /// child's stderr (its structured log) is drained by a background
    /// thread so a chatty worker can never block on a full pipe.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the child cannot be spawned or exits
    /// before announcing its address.
    pub fn spawn(
        index: usize,
        binary: &Path,
        session_threads: usize,
        splits: usize,
    ) -> std::io::Result<Self> {
        let spec = SpawnSpec { binary: binary.to_path_buf(), session_threads, splits };
        let (child, addr, drain) = launch_daemon(index, &spec)?;
        obs_info!("cluster worker spawned", worker = index, addr = addr);
        Ok(Self {
            index,
            addr: Mutex::new(addr),
            alive: AtomicBool::new(true),
            child: Mutex::new(Some(child)),
            stderr_drain: Mutex::new(Some(drain)),
            spawn_spec: Some(spec),
        })
    }

    /// Wraps an externally managed worker address (nothing to spawn, kill,
    /// or respawn; liveness tracking still applies).
    #[must_use]
    pub fn external(index: usize, addr: impl Into<String>) -> Self {
        Self {
            index,
            addr: Mutex::new(addr.into()),
            alive: AtomicBool::new(true),
            child: Mutex::new(None),
            stderr_drain: Mutex::new(None),
            spawn_spec: None,
        }
    }

    /// The worker's position in the cluster (its ring identity).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The worker's current TCP address (owned: a respawn replaces it).
    #[must_use]
    pub fn addr(&self) -> String {
        self.addr.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Whether the coordinator still considers this worker live.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Whether a replacement daemon can be spawned for this slot (the
    /// coordinator spawned the original; external workers stay dead).
    #[must_use]
    pub fn respawnable(&self) -> bool {
        self.spawn_spec.is_some()
    }

    /// Marks the worker dead. Returns `true` on the first transition —
    /// exactly one caller (health monitor or a faulted request) does the
    /// death accounting, however many observe the same corpse.
    pub fn mark_dead(&self) -> bool {
        let first = self.alive.swap(false, Ordering::SeqCst);
        if first {
            metrics().cluster_worker_deaths_total.inc();
            metrics().cluster_workers_active.dec();
            obs_warn!("cluster worker marked dead", worker = self.index, addr = self.addr());
        }
        first
    }

    /// Spawns a replacement daemon for a retired slot and swings the
    /// handle over to it: new child, new address, liveness back on. The
    /// ring needs no mutation — routing goes through an `is_alive`
    /// predicate, so flipping liveness re-admits the slot to every arc it
    /// already owns. The replacement daemon starts with empty sessions;
    /// in-flight work was already replayed elsewhere from checkpoints, and
    /// future scenarios routed here open fresh sessions.
    ///
    /// No-op (returns `Ok(false)`) for external workers and for workers
    /// that are still alive.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the replacement cannot be spawned; the
    /// worker stays dead and the caller's respawn budget should still be
    /// charged (a crash-looping binary must not retry forever).
    pub fn respawn(&self) -> std::io::Result<bool> {
        let Some(spec) = &self.spawn_spec else {
            return Ok(false);
        };
        if self.is_alive() {
            return Ok(false);
        }
        // Reap the corpse (and its stderr drain) before replacing it.
        self.kill();
        let (child, addr, drain) = launch_daemon(self.index, spec)?;
        *self.addr.lock().unwrap_or_else(|p| p.into_inner()) = addr.clone();
        *self.child.lock().unwrap_or_else(|p| p.into_inner()) = Some(child);
        *self.stderr_drain.lock().unwrap_or_else(|p| p.into_inner()) = Some(drain);
        // Liveness flips last: nobody routes here until the address and
        // child are in place.
        self.alive.store(true, Ordering::SeqCst);
        metrics().cluster_worker_respawns_total.inc();
        metrics().cluster_workers_active.inc();
        obs_info!("cluster worker respawned", worker = self.index, addr = addr);
        Ok(true)
    }

    /// SIGKILLs the spawned child, if any (no-op for external workers).
    pub fn kill(&self) {
        if let Some(mut child) = self.child.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(drain) = self.stderr_drain.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = drain.join();
        }
    }

    /// Graceful stop: a polite protocol `Shutdown` (bounded by `deadline`),
    /// then the kill.
    pub fn shutdown(&self, deadline: Duration) {
        if self.is_alive() {
            if let Ok(mut wire) = WireClient::connect(&self.addr(), deadline) {
                let _ = wire.shutdown();
            }
        }
        self.kill();
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A blocking protocol client with a per-request read deadline (see
/// module docs).
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl WireClient {
    /// Connects with `deadline` as both the connect and per-reply read
    /// timeout.
    ///
    /// # Errors
    ///
    /// Returns [`WireFault::Connect`] when the worker is unreachable.
    pub fn connect(addr: &str, deadline: Duration) -> Result<Self, WireFault> {
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| WireFault::Connect(e.to_string()))?
            .next()
            .ok_or_else(|| WireFault::Connect(format!("no address for {addr}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, deadline)
            .map_err(|e| WireFault::Connect(e.to_string()))?;
        stream.set_read_timeout(Some(deadline)).map_err(|e| WireFault::Connect(e.to_string()))?;
        let writer = stream.try_clone().map_err(|e| WireFault::Connect(e.to_string()))?;
        Ok(Self { reader: BufReader::new(stream), writer, next_id: 0 })
    }

    /// Sends one command and blocks for its reply (replies with other
    /// correlation ids are skipped). `Reply::Error` becomes
    /// [`WireFault::Remote`]; everything transport-shaped becomes a
    /// worker fault.
    ///
    /// # Errors
    ///
    /// See [`WireFault`].
    pub fn request(&mut self, cmd: Command) -> Result<Reply, WireFault> {
        self.next_id += 1;
        let id = self.next_id;
        let line =
            encode(&Request::new(id, cmd)).map_err(|e| WireFault::Malformed(e.to_string()))?;
        writeln!(self.writer, "{line}").map_err(|_| WireFault::Disconnected)?;
        self.writer.flush().map_err(|_| WireFault::Disconnected)?;
        loop {
            let mut reply_line = String::new();
            match self.reader.read_line(&mut reply_line) {
                Ok(0) => return Err(WireFault::Disconnected),
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(WireFault::Timeout)
                }
                Err(_) => return Err(WireFault::Disconnected),
            }
            let response = decode::<crate::protocol::Response>(&reply_line)
                .map_err(|e| WireFault::Malformed(e.to_string()))?;
            if response.id != id {
                continue;
            }
            return match response.reply {
                Reply::Error(e) => Err(WireFault::Remote(e)),
                reply => Ok(reply),
            };
        }
    }

    /// Opens a session.
    ///
    /// # Errors
    ///
    /// `InvalidProblem` arrives as [`WireFault::Remote`].
    pub fn open(&mut self, params: OpenParams) -> Result<SessionOpened, WireFault> {
        match self.request(Command::Open(params))? {
            Reply::Opened(o) => Ok(o),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Resumes a session from checkpoint JSON.
    ///
    /// # Errors
    ///
    /// Corrupt state arrives as [`WireFault::Remote`].
    pub fn resume(&mut self, label: &str, state: String) -> Result<SessionOpened, WireFault> {
        match self.request(Command::Resume(ResumeParams { label: label.to_owned(), state }))? {
            Reply::Opened(o) => Ok(o),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Applies one delta and waits for its verdict, absorbing `Busy`
    /// backpressure with a short retry sleep (the cluster drives each
    /// session window-1, so `Busy` only appears under inbox contention
    /// from other coordinator threads on the same worker).
    ///
    /// # Errors
    ///
    /// `DeltaFailed` arrives as [`WireFault::Remote`].
    pub fn delta(&mut self, session: u64, delta: &DeltaEvent) -> Result<EventRecord, WireFault> {
        loop {
            let cmd = Command::Delta(DeltaParams { session, delta: delta.clone() });
            match self.request(cmd)? {
                Reply::Verdict(v) => return Ok(v.record),
                Reply::Busy(_) => std::thread::sleep(Duration::from_millis(2)),
                other => return Err(unexpected("Verdict", &other)),
            }
        }
    }

    /// Takes a checkpoint of `session`, returning the state JSON.
    ///
    /// # Errors
    ///
    /// See [`WireFault`].
    pub fn checkpoint(&mut self, session: u64) -> Result<String, WireFault> {
        match self.request(Command::Checkpoint(SessionRef { session }))? {
            Reply::Checkpoint(c) => Ok(c.state),
            other => Err(unexpected("Checkpoint", &other)),
        }
    }

    /// Closes `session` (best-effort from the router's point of view).
    ///
    /// # Errors
    ///
    /// See [`WireFault`].
    pub fn close(&mut self, session: u64) -> Result<(), WireFault> {
        match self.request(Command::Close(SessionRef { session }))? {
            Reply::Closed(_) => Ok(()),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Fetches the worker's process-wide counters.
    ///
    /// # Errors
    ///
    /// See [`WireFault`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireFault> {
        match self.request(Command::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Pings the worker (protocol `Hello`).
    ///
    /// # Errors
    ///
    /// See [`WireFault`].
    pub fn hello(&mut self) -> Result<(), WireFault> {
        match self.request(Command::Hello)? {
            Reply::Hello(_) => Ok(()),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Asks the worker to drain and stop.
    ///
    /// # Errors
    ///
    /// See [`WireFault`].
    pub fn shutdown(&mut self) -> Result<(), WireFault> {
        match self.request(Command::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> WireFault {
    WireFault::Malformed(format!("expected {wanted}, got {got:?}"))
}
