//! The cluster coordinator: sharded campaign execution with failover.
//!
//! [`Cluster`] spawns N worker daemons (plain `covern_cli serve`
//! processes) and runs a campaign corpus across them. Placement, caching
//! and recovery are all keyed by content:
//!
//! * **Routing** — each scenario goes to the ring owner of its original
//!   problem's *proof-family key* ([`covern_campaign::proof_family_key`]).
//!   Fine-tune siblings share that key, so they land on one worker and
//!   keep both full-artifact dedupe and branch-and-bound warm starts
//!   local. Because equal full-verify keys imply equal family keys, the
//!   per-worker key populations *partition* the global one — summed
//!   worker cache counters equal the single-process engine's, which is
//!   what makes the canonical cluster report byte-identical to the
//!   single-process report (asserted by `tests/cluster_differential.rs`).
//! * **Recovery** — the coordinator checkpoints each session against its
//!   [`DiskStore`] (after open, then every [`CHECKPOINT_EVERY`]
//!   verdicts). When a request hits a dead, hung or garbage-speaking
//!   worker, the worker is retired from the ring, the session is resumed
//!   from its last checkpoint on the next live owner clockwise, and the
//!   delta stream is replayed from the checkpoint — replayed verdicts
//!   are cross-checked against the already-recorded ones (determinism
//!   makes replay idempotent), then the stream continues. Verdict
//!   streams therefore come out identical with or without faults
//!   (asserted by `tests/cluster_faults.rs`).
//!
//! The final report is assembled by the same
//! [`covern_campaign::runner::assemble_report`] the in-process engine
//! uses, with worker `Stats` summed into the cache section. Proof-tier
//! counters and the B&B split count live inside the worker processes and
//! are reported as zero — both are zeroed by `CampaignReport::canonical`
//! anyway, so canonical reports are unaffected. Like the single-process
//! engine, use a fresh cluster per measured campaign: worker daemons
//! accumulate cache state across runs.

use super::health::HealthMonitor;
use super::ring::HashRing;
use super::store::DiskStore;
use super::worker::{WireClient, WireFault, WorkerHandle};
use crate::protocol::{ErrorCode, OpenParams};
use covern_campaign::report::{CacheSection, CampaignReport, ScenarioReport};
use covern_campaign::runner::{assemble_report, thread_split};
use covern_campaign::{loop_family_key, proof_family_key, CampaignError, Scenario};
use covern_core::problem::VerificationProblem;
use covern_observe::{metrics, obs_info, obs_warn};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Checkpoint cadence: after the open, then every this many verdicts.
/// Lower = less replay after a death, more checkpoint round-trips.
pub const CHECKPOINT_EVERY: usize = 2;

/// Fault injection: SIGKILL worker `worker` the moment the cluster-wide
/// fresh-verdict count reaches `after_verdicts`. The worker is *not*
/// pre-marked dead — detection must travel the real failure path
/// (request fault or health ping). Test-facing, but kept in the public
/// config so operators can drill failover on a live corpus.
#[derive(Debug, Clone, Copy)]
pub struct KillAfter {
    /// Index of the worker to kill.
    pub worker: usize,
    /// Fresh (non-replay) verdict count that triggers the kill.
    pub after_verdicts: u64,
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker daemons to spawn.
    pub workers: usize,
    /// Campaign thread budget — reported in the campaign header and split
    /// into coordinator driver threads exactly like the single-process
    /// engine's [`thread_split`].
    pub threads: usize,
    /// Per-scenario subproblem budget override (`0` divides `threads`).
    pub scenario_threads: usize,
    /// Per-request reply deadline; a worker that blows it is retired.
    pub deadline: Duration,
    /// Health-check ping interval.
    pub ping_interval: Duration,
    /// Cluster-wide budget of worker respawns: after a spawned worker is
    /// retired, the health monitor launches a replacement daemon (fresh
    /// port, same ring slot) until this many respawns — successful or
    /// failed — have been spent. `0` disables auto-respawn (a dead worker
    /// then stays dead for the campaign's remainder). External workers are
    /// never respawned.
    pub respawn_budget: usize,
    /// Branch-and-bound split budget handed to each worker daemon.
    pub splits: usize,
    /// Checkpoint/spill directory; `None` uses a per-cluster temp
    /// directory removed at shutdown.
    pub store_dir: Option<PathBuf>,
    /// Worker binary; `None` re-executes the current binary (the CLI's
    /// own path — workers are `covern_cli serve`).
    pub binary: Option<PathBuf>,
    /// Optional fault injection (see [`KillAfter`]).
    pub kill_after: Option<KillAfter>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            threads: 4,
            scenario_threads: 0,
            deadline: Duration::from_secs(30),
            ping_interval: Duration::from_millis(1000),
            respawn_budget: 2,
            splits: 256,
            store_dir: None,
            binary: None,
            kill_after: None,
        }
    }
}

/// Uniquifier for unnamed (temp) store directories within one process.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The cluster coordinator (see module docs).
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    workers: Arc<Vec<WorkerHandle>>,
    ring: HashRing,
    store: Arc<DiskStore>,
    /// Set when the store directory is cluster-owned (temp) and should be
    /// removed at shutdown.
    owned_store: bool,
    health: Option<HealthMonitor>,
    /// Cluster-wide fresh-verdict counter (drives [`KillAfter`]).
    verdicts_seen: AtomicU64,
    stopped: bool,
}

impl Cluster {
    /// Spawns `config.workers` daemons and starts health monitoring.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidConfig`] for a zero-worker config, an
    /// unresolvable worker binary, or a worker that fails to start.
    pub fn launch(config: ClusterConfig) -> Result<Self, CampaignError> {
        if config.workers == 0 {
            return Err(CampaignError::InvalidConfig("cluster needs at least one worker".into()));
        }
        let binary = match &config.binary {
            Some(b) => b.clone(),
            None => std::env::current_exe().map_err(|e| {
                CampaignError::InvalidConfig(format!("cannot locate worker binary: {e}"))
            })?,
        };
        let session_threads = if config.scenario_threads > 0 {
            config.scenario_threads
        } else {
            (config.threads / config.workers).max(1)
        };
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            workers.push(WorkerHandle::spawn(i, &binary, session_threads, config.splits).map_err(
                |e| CampaignError::InvalidConfig(format!("worker {i} failed to start: {e}")),
            )?);
        }
        Self::assemble(config, workers)
    }

    /// Builds a coordinator over externally managed workers (the fault
    /// tests use this to mix real daemons with deliberately slow or
    /// garbage-speaking fakes).
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidConfig`] for an empty worker set or an
    /// unusable store directory.
    pub fn with_workers(
        config: ClusterConfig,
        workers: Vec<WorkerHandle>,
    ) -> Result<Self, CampaignError> {
        if workers.is_empty() {
            return Err(CampaignError::InvalidConfig("cluster needs at least one worker".into()));
        }
        Self::assemble(config, workers)
    }

    fn assemble(config: ClusterConfig, workers: Vec<WorkerHandle>) -> Result<Self, CampaignError> {
        let (store_dir, owned_store) = match &config.store_dir {
            Some(dir) => (dir.clone(), false),
            None => (
                std::env::temp_dir().join(format!(
                    "covern-cluster-{}-{}",
                    std::process::id(),
                    STORE_SEQ.fetch_add(1, Ordering::Relaxed)
                )),
                true,
            ),
        };
        let store = Arc::new(DiskStore::open(&store_dir).map_err(|e| {
            CampaignError::InvalidConfig(format!("cannot open store {}: {e}", store_dir.display()))
        })?);
        let ring = HashRing::with_workers(workers.len());
        let workers = Arc::new(workers);
        metrics().cluster_workers_active.add(workers.len() as i64);
        let health = HealthMonitor::start(
            Arc::clone(&workers),
            config.ping_interval,
            config.deadline,
            config.respawn_budget,
        );
        obs_info!("cluster up", workers = workers.len(), store = store_dir.display().to_string());
        Ok(Self {
            config,
            workers,
            ring,
            store,
            owned_store,
            health: Some(health),
            verdicts_seen: AtomicU64::new(0),
            stopped: false,
        })
    }

    /// The coordinator's content-addressed disk store.
    #[must_use]
    pub fn store(&self) -> &Arc<DiskStore> {
        &self.store
    }

    /// Workers the coordinator currently considers live.
    #[must_use]
    pub fn workers_alive(&self) -> usize {
        self.workers.iter().filter(|w| w.is_alive()).count()
    }

    /// Runs a campaign corpus across the cluster. Scenario order in the
    /// report is corpus order; the report is assembled by the same code
    /// path as the single-process engine, so its canonical form is
    /// byte-identical to [`covern_campaign::CampaignEngine::run`]'s on
    /// the same corpus.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidConfig`] for an empty corpus. Worker
    /// deaths are not errors — scenarios are reassigned, and a scenario
    /// that exhausts every worker is *recorded* as errored, like any
    /// other scenario-level failure.
    pub fn run_campaign(&self, corpus: &[Scenario]) -> Result<CampaignReport, CampaignError> {
        if corpus.is_empty() {
            return Err(CampaignError::InvalidConfig("empty corpus".into()));
        }
        let t0 = Instant::now();
        let (drivers, scenario_threads) =
            thread_split(self.config.threads, self.config.scenario_threads, corpus.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScenarioReport>>> =
            corpus.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..drivers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = corpus.get(i) else { break };
                    let t = Instant::now();
                    let mut report = self.drive_scenario(scenario);
                    report.wall_us = t.elapsed().as_micros() as u64;
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(report);
                });
            }
        });
        let scenarios: Vec<ScenarioReport> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every corpus slot is driven")
            })
            .collect();
        Ok(assemble_report(
            self.config.threads,
            scenario_threads,
            scenarios,
            self.sum_worker_stats(),
            t0.elapsed().as_micros() as u64,
            0,
        ))
    }

    /// Sums live workers' cache counters into the report's cache section
    /// (see module docs for why the sums equal single-process counts).
    fn sum_worker_stats(&self) -> CacheSection {
        let (mut hits, mut misses, mut entries) = (0u64, 0u64, 0u64);
        for worker in self.workers.iter().filter(|w| w.is_alive()) {
            let snap = WireClient::connect(&worker.addr(), self.config.deadline)
                .and_then(|mut wire| wire.stats());
            match snap {
                Ok(s) => {
                    hits += s.cache_hits;
                    misses += s.cache_misses;
                    entries += s.cache_entries;
                }
                Err(fault) => self.note_fault(worker.index(), &fault),
            }
        }
        CacheSection {
            enabled: true,
            hits,
            misses,
            entries,
            proof_hits: 0,
            proof_misses: 0,
            // Tube-cache counters live inside the worker processes and
            // are warmth-dependent anyway; like the proof tier, they are
            // reported as zero (and zeroed by `canonical` regardless).
            tube_step_hits: 0,
            tube_step_misses: 0,
        }
    }

    /// Drives one scenario end to end, surviving worker deaths (see
    /// module docs for the reassignment walkthrough).
    fn drive_scenario(&self, scenario: &Scenario) -> ScenarioReport {
        let mut report = ScenarioReport {
            name: scenario.name.clone(),
            initial_outcome: "unknown".into(),
            initial_wall_us: 0,
            events: Vec::with_capacity(scenario.events.len()),
            wall_us: 0,
            error: None,
        };
        // Coordinator-side construction doubles as validation: an invalid
        // problem records the same `e.to_string()` the single-process
        // engine records, without a wire round-trip. Closed-loop
        // scenarios validate spec-against-controller instead (their
        // controller arity usually cannot form an open-loop problem) and
        // route by the loop family key, so fine-tune siblings co-locate
        // on one worker's tube cache.
        let key = match &scenario.closed_loop {
            Some(spec) => {
                if let Err(e) = spec.validate(&scenario.network) {
                    report.error = Some(e.to_string());
                    return report;
                }
                loop_family_key(spec, &scenario.network, scenario.domain).to_u128()
            }
            None => {
                let problem = match VerificationProblem::new(
                    scenario.network.clone(),
                    scenario.din.clone(),
                    scenario.dout.clone(),
                ) {
                    Ok(p) => p,
                    Err(e) => {
                        report.error = Some(e.to_string());
                        return report;
                    }
                };
                proof_family_key(&problem, scenario.domain, scenario.margin).to_u128()
            }
        };

        // (store key, number of leading events the checkpoint covers).
        let mut checkpoint: Option<(u128, usize)> = None;
        let mut opened_once = false;
        let mut attempts = 0usize;
        'attempt: loop {
            attempts += 1;
            if attempts > self.workers.len() * 2 + 2 {
                report.error = Some("cluster: retries exhausted".into());
                return report;
            }
            let Some(widx) = self.ring.route_live(key, |w| self.workers[w].is_alive()) else {
                report.error = Some("cluster: no live worker available".into());
                return report;
            };
            let worker = &self.workers[widx];
            let mut wire = match WireClient::connect(&worker.addr(), self.config.deadline) {
                Ok(wire) => wire,
                Err(fault) => {
                    self.note_fault(widx, &fault);
                    continue 'attempt;
                }
            };
            // Open fresh, or resume from the last checkpoint.
            let (session, mut applied) = match &checkpoint {
                Some((cp_key, cp_events)) => {
                    let Some(state) =
                        self.store.get(*cp_key).and_then(|b| String::from_utf8(b).ok())
                    else {
                        // A lost checkpoint degrades to a from-scratch
                        // replay of the whole stream.
                        checkpoint = None;
                        continue 'attempt;
                    };
                    match wire.resume(&scenario.name, state) {
                        Ok(opened) => {
                            metrics().cluster_reassignments_total.inc();
                            obs_warn!(
                                "session reassigned",
                                scenario = scenario.name,
                                worker = widx,
                                replay_from = *cp_events
                            );
                            (opened.session, *cp_events)
                        }
                        Err(WireFault::Remote(e)) => {
                            report.error = Some(e.message);
                            return report;
                        }
                        Err(fault) => {
                            self.note_fault(widx, &fault);
                            continue 'attempt;
                        }
                    }
                }
                None => match wire.open(OpenParams {
                    label: scenario.name.clone(),
                    network: scenario.network.clone(),
                    din: scenario.din.clone(),
                    dout: scenario.dout.clone(),
                    domain: scenario.domain,
                    margin: scenario.margin,
                    closed_loop: scenario.closed_loop.clone(),
                }) {
                    Ok(opened) => {
                        report.initial_outcome = opened.outcome;
                        report.initial_wall_us = opened.wall_us;
                        if opened_once {
                            // The previous owner died before the first
                            // checkpoint landed; this re-open is still a
                            // reassignment.
                            metrics().cluster_reassignments_total.inc();
                        }
                        opened_once = true;
                        (opened.session, 0)
                    }
                    Err(WireFault::Remote(e)) => {
                        report.error = Some(e.message);
                        return report;
                    }
                    Err(fault) => {
                        self.note_fault(widx, &fault);
                        continue 'attempt;
                    }
                },
            };
            // Post-open baseline checkpoint, so a death during the very
            // first delta already resumes instead of re-verifying.
            if checkpoint.is_none() {
                match wire.checkpoint(session) {
                    Ok(state) => {
                        checkpoint = Some((self.store.put(state.as_bytes()).to_u128(), 0));
                    }
                    Err(WireFault::Remote(_)) => {} // keep going checkpoint-less
                    Err(fault) => {
                        self.note_fault(widx, &fault);
                        continue 'attempt;
                    }
                }
            }
            while applied < scenario.events.len() {
                let replaying = applied < report.events.len();
                match wire.delta(session, &scenario.events[applied]) {
                    Ok(record) => {
                        if replaying {
                            if record.outcome != report.events[applied].outcome {
                                report.error = Some(format!(
                                    "cluster: replay diverged at event {applied}: {} became {}",
                                    report.events[applied].outcome, record.outcome
                                ));
                                let _ = wire.close(session);
                                return report;
                            }
                        } else {
                            report.events.push(record);
                            self.on_fresh_verdict();
                        }
                        applied += 1;
                        let stream_done = applied == scenario.events.len();
                        if !replaying && !stream_done && applied % CHECKPOINT_EVERY == 0 {
                            match wire.checkpoint(session) {
                                Ok(state) => {
                                    checkpoint =
                                        Some((self.store.put(state.as_bytes()).to_u128(), applied));
                                }
                                Err(WireFault::Remote(_)) => {}
                                Err(fault) => {
                                    self.note_fault(widx, &fault);
                                    continue 'attempt;
                                }
                            }
                        }
                    }
                    Err(WireFault::Remote(e)) if e.code == ErrorCode::DeltaFailed => {
                        // Byte-identical to the single-process engine:
                        // same message, same index arithmetic.
                        report.error =
                            Some(format!("event {}: {}", report.events.len(), e.message));
                        let _ = wire.close(session);
                        return report;
                    }
                    Err(WireFault::Remote(e)) => {
                        report.error = Some(e.message);
                        let _ = wire.close(session);
                        return report;
                    }
                    Err(fault) => {
                        self.note_fault(widx, &fault);
                        continue 'attempt;
                    }
                }
            }
            let _ = wire.close(session);
            return report;
        }
    }

    /// Classifies and counts a worker fault, retires the worker, and
    /// reaps its process so the next routing decision skips it.
    fn note_fault(&self, widx: usize, fault: &WireFault) {
        debug_assert!(fault.is_worker_fault(), "remote errors are session faults");
        match fault {
            WireFault::Timeout => metrics().cluster_deadline_reroutes_total.inc(),
            WireFault::Malformed(_) => metrics().cluster_malformed_responses_total.inc(),
            _ => {}
        }
        obs_warn!("cluster worker fault", worker = widx, fault = fault.to_string());
        if self.workers[widx].mark_dead() {
            self.workers[widx].kill();
        }
    }

    /// Counts a fresh (non-replay) verdict and fires [`KillAfter`] when
    /// the threshold is crossed (exactly once — the counter is atomic).
    fn on_fresh_verdict(&self) {
        let n = self.verdicts_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(kill) = &self.config.kill_after {
            if n == kill.after_verdicts {
                if let Some(worker) = self.workers.get(kill.worker) {
                    obs_warn!("fault injection: killing worker", worker = kill.worker);
                    worker.kill();
                }
            }
        }
    }

    /// Stops health checks, politely shuts down live workers, kills the
    /// rest, and removes a cluster-owned store directory. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        if let Some(mut health) = self.health.take() {
            health.stop();
        }
        for worker in self.workers.iter() {
            let was_alive = worker.is_alive();
            worker.shutdown(Duration::from_millis(500));
            if was_alive {
                metrics().cluster_workers_active.dec();
            }
        }
        if self.owned_store {
            let _ = std::fs::remove_dir_all(self.store.dir());
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
