//! Coordinator-level content-addressed disk store.
//!
//! The cluster's second cache tier: each worker daemon keeps its own
//! in-memory `ArtifactCache`, and the coordinator keeps this
//! disk-backed store underneath — session checkpoints land here so a
//! dead worker's sessions can be replayed elsewhere, and (through the
//! [`BlobStore`] hook) spilled proof artifacts survive coordinator
//! restarts and dedupe across workers for free: the file name *is* the
//! 128-bit content hash, so two workers spilling the same artifact write
//! the same file.
//!
//! Durability discipline: every write goes to a unique temp file in the
//! store directory and is renamed into place. Rename is atomic on the
//! same filesystem, so a reader never observes a partial blob — a
//! crashed write leaves a stray `.tmp`, never a corrupt entry. Loads
//! that fail for any reason (missing, unreadable) are misses, never
//! errors, per the [`BlobStore`] contract.

use covern_campaign::{content_key, CacheKey};
use covern_core::cache::BlobStore;
use covern_observe::metrics;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Content-address tag for blobs stored via [`DiskStore::put`]; keyed
/// writes through [`BlobStore`] carry their own caller-computed key.
const BLOB_TAG: &str = "covern-cluster-blob-v1";

/// A directory of `<32-hex-digits>.blob` files, one per 128-bit key (see
/// module docs).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Temp-name uniquifier: pid distinguishes processes, this counter
    /// distinguishes threads within one.
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, tmp_seq: AtomicU64::new(0) })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn blob_path(&self, key: u128) -> PathBuf {
        self.dir.join(format!("{}.blob", CacheKey::from_u128(key).hex()))
    }

    /// Stores `bytes` content-addressed (the key is their hash) and
    /// returns the key. Identical content from any worker lands on one
    /// file; an existing entry short-circuits the write entirely.
    pub fn put(&self, bytes: &[u8]) -> CacheKey {
        let key = content_key(BLOB_TAG, bytes);
        let path = self.blob_path(key.to_u128());
        if !path.exists() {
            self.write_atomic(&path, bytes);
        }
        key
    }

    /// Stores `bytes` under a caller-chosen key, replacing any previous
    /// value (last write wins). Errors are swallowed per the spill-tier
    /// contract.
    pub fn put_keyed(&self, key: u128, bytes: &[u8]) {
        self.write_atomic(&self.blob_path(key), bytes);
    }

    /// Returns the bytes under `key`, or `None` (absent or unreadable).
    #[must_use]
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        let bytes = fs::read(self.blob_path(key)).ok()?;
        metrics().store_loads_total.inc();
        Some(bytes)
    }

    /// Number of committed blobs on disk (temp files excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "blob"))
            .count()
    }

    /// Whether the store holds no committed blobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write-temp-then-rename; failures are swallowed (spill-tier
    /// contract: a lost spill costs a warm start, never correctness) but
    /// the temp file is cleaned up so crashes don't accumulate garbage.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) {
        let tmp = self.dir.join(format!(
            ".tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let committed = fs::File::create(&tmp)
            .and_then(|mut f| {
                f.write_all(bytes)?;
                f.sync_all()
            })
            .and_then(|()| fs::rename(&tmp, path))
            .is_ok();
        if committed {
            metrics().store_spills_total.inc();
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

impl BlobStore for DiskStore {
    fn load(&self, key: u128) -> Option<Vec<u8>> {
        self.get(key)
    }

    fn store(&self, key: u128, bytes: &[u8]) {
        self.put_keyed(key, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> DiskStore {
        let dir =
            std::env::temp_dir().join(format!("covern-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(dir).unwrap()
    }

    #[test]
    fn content_addressed_roundtrip_and_dedupe() {
        let store = temp_store("roundtrip");
        let key = store.put(b"artifact bytes");
        assert_eq!(store.get(key.to_u128()).as_deref(), Some(b"artifact bytes".as_slice()));
        // Identical content is one file, whoever writes it.
        let again = store.put(b"artifact bytes");
        assert_eq!(key, again);
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keyed_writes_replace_and_missing_keys_miss() {
        let store = temp_store("keyed");
        store.put_keyed(7, b"v1");
        store.put_keyed(7, b"v2");
        assert_eq!(store.get(7).as_deref(), Some(b"v2".as_slice()));
        assert_eq!(store.get(8), None);
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn a_fresh_store_over_the_same_directory_sees_committed_blobs() {
        let store = temp_store("restart");
        let key = store.put(b"survives");
        let dir = store.dir().to_path_buf();
        drop(store);
        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.get(key.to_u128()).as_deref(), Some(b"survives".as_slice()));
        let _ = fs::remove_dir_all(dir);
    }
}
