//! Background worker health checks and bounded auto-respawn.
//!
//! A dedicated thread pings every live worker each interval with a
//! protocol `Hello` under a short deadline. A failed ping marks the
//! worker dead (`covern_cluster_worker_deaths_total`,
//! `covern_cluster_workers_active`); the router's next routing decision
//! for any key on the dead worker's arcs then falls through to a ring
//! neighbour. The monitor is advisory for *detection* — the per-request
//! deadline in the router catches deaths faster when a scenario is
//! actively talking to the corpse — but it is what retires *idle*
//! workers, whose death would otherwise only surface when the final
//! stats sweep reaches them.
//!
//! The same thread owns **auto-respawn**: after each ping sweep it scans
//! for retired, coordinator-spawned workers and launches a replacement
//! daemon for each ([`WorkerHandle::respawn`],
//! `covern_cluster_worker_respawns_total`), bounded by a cluster-wide
//! respawn budget so a crash-looping binary degrades to the old
//! stay-dead behaviour instead of forking forever. External workers
//! (fault-injection fakes, operator-managed daemons) are never
//! respawned. A respawned slot re-enters the `HashRing` implicitly:
//! routing consults a liveness predicate per arc, so flipping the
//! handle back to alive re-admits every arc the slot already owned.

use super::worker::{WireClient, WorkerHandle};
use covern_observe::{metrics, obs_warn};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to the ping thread; stop with [`HealthMonitor::stop`] (also
/// called on drop).
#[derive(Debug)]
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Starts pinging `workers` every `interval`, each ping bounded by
    /// `deadline`; dead spawned workers are replaced until
    /// `respawn_budget` replacements have been spent (`0` disables
    /// auto-respawn).
    #[must_use]
    pub fn start(
        workers: Arc<Vec<WorkerHandle>>,
        interval: Duration,
        deadline: Duration,
        respawn_budget: usize,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut budget = respawn_budget;
            while !stop_flag.load(Ordering::SeqCst) {
                for worker in workers.iter().filter(|w| w.is_alive()) {
                    metrics().cluster_pings_total.inc();
                    let ok = WireClient::connect(&worker.addr(), deadline)
                        .and_then(|mut wire| wire.hello())
                        .is_ok();
                    if !ok && worker.mark_dead() {
                        worker.kill();
                    }
                }
                // Replace retirements detected by anyone — this sweep or a
                // faulted request in the router — while budget lasts. A
                // failed spawn attempt is charged too: a crash-looping
                // binary must degrade to stay-dead, not fork forever.
                for worker in workers.iter().filter(|w| !w.is_alive() && w.respawnable()) {
                    if stop_flag.load(Ordering::SeqCst) || budget == 0 {
                        break;
                    }
                    budget -= 1;
                    if let Err(e) = worker.respawn() {
                        obs_warn!(
                            "cluster worker respawn failed",
                            worker = worker.index(),
                            error = e
                        );
                    }
                }
                // Sleep in small slices so stop() returns promptly.
                let mut remaining = interval;
                while !remaining.is_zero() && !stop_flag.load(Ordering::SeqCst) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        Self { stop, thread: Some(thread) }
    }

    /// Stops the ping thread and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop();
    }
}
