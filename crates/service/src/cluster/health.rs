//! Background worker health checks.
//!
//! A dedicated thread pings every live worker each interval with a
//! protocol `Hello` under a short deadline. A failed ping marks the
//! worker dead (`covern_cluster_worker_deaths_total`,
//! `covern_cluster_workers_active`); the router's next routing decision
//! for any key on the dead worker's arcs then falls through to a ring
//! neighbour. The monitor is advisory — the per-request deadline in the
//! router catches deaths faster when a scenario is actively talking to
//! the corpse — but it is what retires *idle* workers, whose death would
//! otherwise only surface when the final stats sweep reaches them.

use super::worker::{WireClient, WorkerHandle};
use covern_observe::metrics;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to the ping thread; stop with [`HealthMonitor::stop`] (also
/// called on drop).
#[derive(Debug)]
pub struct HealthMonitor {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Starts pinging `workers` every `interval`, each ping bounded by
    /// `deadline`.
    #[must_use]
    pub fn start(workers: Arc<Vec<WorkerHandle>>, interval: Duration, deadline: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                for worker in workers.iter().filter(|w| w.is_alive()) {
                    metrics().cluster_pings_total.inc();
                    let ok = WireClient::connect(worker.addr(), deadline)
                        .and_then(|mut wire| wire.hello())
                        .is_ok();
                    if !ok && worker.mark_dead() {
                        worker.kill();
                    }
                }
                // Sleep in small slices so stop() returns promptly.
                let mut remaining = interval;
                while !remaining.is_zero() && !stop_flag.load(Ordering::SeqCst) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        });
        Self { stop, thread: Some(thread) }
    }

    /// Stops the ping thread and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop();
    }
}
