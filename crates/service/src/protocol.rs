//! `covern-protocol-v1`: the wire types of the verification service.
//!
//! The protocol is **newline-delimited JSON**: every request and every
//! response is one JSON object on one `\n`-terminated UTF-8 line. Requests
//! carry a client-chosen correlation `id`, echoed verbatim on the
//! response; a client may pipeline requests and match replies by id
//! (per-session replies additionally arrive in submission order). The full
//! message-by-message specification with examples, error codes, and
//! versioning rules lives in `docs/PROTOCOL.md`; the serde types here are
//! the single source of truth the doc's examples are tested against.
//!
//! Enum payloads use serde's externally-tagged convention: a unit variant
//! is its name as a string (`"Hello"`), a data variant is a single-key
//! object (`{"Open": {…}}`). Every struct field is always present on the
//! wire (optional values are `null`), which keeps the hand-rolled parsers
//! of non-Rust clients trivial.

use covern_absint::{BoxDomain, DomainKind};
use covern_campaign::report::EventRecord;
use covern_campaign::DeltaEvent;
use covern_core::artifact::Margin;
use covern_nn::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol version tag; every message's `v` field must equal it.
pub const PROTOCOL_VERSION: &str = "covern-protocol-v1";

/// One client → server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version tag ([`PROTOCOL_VERSION`]).
    pub v: String,
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The command to execute.
    pub cmd: Command,
}

impl Request {
    /// Wraps a command in a versioned envelope.
    pub fn new(id: u64, cmd: Command) -> Self {
        Self { v: PROTOCOL_VERSION.to_owned(), id, cmd }
    }
}

/// The commands of `covern-protocol-v1`.
//
// `Open` carries the whole problem (network + boxes + optional
// closed-loop spec) inline, which dwarfs the other variants. A command
// is decoded once per request line and consumed immediately — it is
// never stored in bulk — and the wire shim does not model smart
// pointers, so boxing the payload would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Command {
    /// Identify the server; the canonical first message of a connection.
    Hello,
    /// Open a session: run (or dedupe through the process-wide cache) the
    /// original verification of the carried problem.
    Open(OpenParams),
    /// Re-open a session from a checkpoint string (see
    /// [`Command::Checkpoint`]) without re-verifying.
    Resume(ResumeParams),
    /// Stream one delta into a session; answered by a
    /// [`Reply::Verdict`] once the session worker has absorbed it.
    Delta(DeltaParams),
    /// Serialize a session's verifier state to a checkpoint string.
    Checkpoint(SessionRef),
    /// Process-wide counters: sessions, deltas, shared-cache hit/miss.
    Stats,
    /// The full metrics registry rendered in Prometheus text format
    /// (the in-band twin of the `--metrics-http` scrape endpoint).
    Metrics,
    /// Close a session and return its summary.
    Close(SessionRef),
    /// Drain every session's in-flight work, then stop the server.
    Shutdown,
}

/// Parameters of [`Command::Open`].
#[derive(Debug, Clone, Serialize)]
pub struct OpenParams {
    /// Client-side label, echoed in replies and summaries.
    pub label: String,
    /// The network `f` of the original verification — or, when
    /// `closed_loop` is set, the **controller** — in the bit-exact
    /// `covern-nn` JSON form.
    pub network: Network,
    /// The input domain `Din` (closed loop: mirrors the initial set).
    pub din: BoxDomain,
    /// The safety set `Dout` (closed loop: mirrors the unsafe region).
    pub dout: BoxDomain,
    /// Abstract domain for artifact construction.
    pub domain: DomainKind,
    /// Artifact buffering margin (`{"rel": 0.0, "abs": 0.0}` for none).
    pub margin: Margin,
    /// When non-`null`, the session is **closed-loop**: the server
    /// propagates a reach tube through controller + plant per this spec
    /// instead of running the open-loop pipeline. Absent (pre-closed-loop
    /// clients) decodes as `null`.
    pub closed_loop: Option<covern_closedloop::ClosedLoopSpec>,
}

impl Deserialize for OpenParams {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            label: Deserialize::from_value(value.field("label")?)?,
            network: Deserialize::from_value(value.field("network")?)?,
            din: Deserialize::from_value(value.field("din")?)?,
            dout: Deserialize::from_value(value.field("dout")?)?,
            domain: Deserialize::from_value(value.field("domain")?)?,
            margin: Deserialize::from_value(value.field("margin")?)?,
            // Absent on pre-closed-loop clients; tolerated so their
            // `covern-protocol-v1` Open lines keep decoding.
            closed_loop: match value.field("closed_loop") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => None,
            },
        })
    }
}

/// Parameters of [`Command::Resume`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeParams {
    /// Client-side label, echoed in replies and summaries.
    pub label: String,
    /// A checkpoint string previously returned by
    /// [`Reply::Checkpoint`] (the `covern-verifier-v1` JSON form).
    pub state: String,
}

/// Parameters of [`Command::Delta`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaParams {
    /// The target session id.
    pub session: u64,
    /// The delta to absorb, in the order sent.
    pub delta: DeltaEvent,
}

/// A bare session reference ([`Command::Checkpoint`], [`Command::Close`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRef {
    /// The target session id.
    pub session: u64,
}

/// One server → client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version tag ([`PROTOCOL_VERSION`]).
    pub v: String,
    /// The correlation id of the request this answers (`0` when the
    /// request was too malformed to extract one).
    pub id: u64,
    /// The payload.
    pub reply: Reply,
}

impl Response {
    /// Wraps a reply in a versioned envelope.
    pub fn new(id: u64, reply: Reply) -> Self {
        Self { v: PROTOCOL_VERSION.to_owned(), id, reply }
    }
}

/// The reply payloads of `covern-protocol-v1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Reply {
    /// Answer to [`Command::Hello`].
    Hello(ServerInfo),
    /// Answer to [`Command::Open`] / [`Command::Resume`]: the session is
    /// registered and its original verification (or checkpoint restore)
    /// completed.
    Opened(SessionOpened),
    /// Answer to [`Command::Delta`]: the verdict of the deciding strategy.
    Verdict(VerdictEvent),
    /// Answer to [`Command::Checkpoint`].
    Checkpoint(CheckpointState),
    /// Answer to [`Command::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Command::Metrics`].
    Metrics(MetricsText),
    /// Answer to [`Command::Close`].
    Closed(SessionSummary),
    /// Answer to [`Command::Shutdown`], sent *after* every session's
    /// queued work has drained.
    ShuttingDown,
    /// Backpressure: the session's bounded inbox is full; retry after
    /// outstanding verdicts arrive.
    Busy(BusyInfo),
    /// Any request-level failure; see [`ErrorCode`].
    Error(ErrorInfo),
}

/// Server identification ([`Reply::Hello`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerInfo {
    /// The protocol version the server speaks.
    pub protocol: String,
    /// Server implementation and version, e.g. `covern-service/0.1.0`.
    pub server: String,
    /// Per-session verifier thread budget the server grants.
    pub session_threads: u64,
    /// Bounded-inbox capacity per session (backpressure threshold).
    pub inbox_capacity: u64,
}

/// A successfully opened (or resumed) session ([`Reply::Opened`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionOpened {
    /// The server-assigned session id (process-unique).
    pub session: u64,
    /// The client's label, echoed.
    pub label: String,
    /// Outcome of the original verification (`proved` | `refuted` |
    /// `unknown`); for [`Command::Resume`] the checkpointed status.
    pub outcome: String,
    /// Wall time of the original verification in microseconds. For a
    /// process-wide cache hit this is what the shared instance originally
    /// cost, not the lookup.
    pub wall_us: u64,
}

/// One absorbed delta's verdict ([`Reply::Verdict`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerdictEvent {
    /// The session that absorbed the delta.
    pub session: u64,
    /// Per-session sequence number, starting at 0 — deltas are absorbed
    /// and answered in submission order.
    pub seq: u64,
    /// Kind, deciding strategy, outcome, optional witness, and the
    /// footnote-3 time accounting (same shape as campaign reports).
    pub record: EventRecord,
}

/// A serialized session ([`Reply::Checkpoint`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointState {
    /// The checkpointed session id.
    pub session: u64,
    /// Self-contained verifier state (`covern-verifier-v1` JSON); feed it
    /// back through [`Command::Resume`] — on this server or another.
    pub state: String,
}

/// Process-wide counters ([`Reply::Stats`]). All counters are monotone
/// over a server's lifetime except `sessions_open`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Sessions currently registered.
    pub sessions_open: u64,
    /// Sessions ever opened (including resumed and since-closed ones).
    pub sessions_opened: u64,
    /// Deltas absorbed across all sessions.
    pub deltas_applied: u64,
    /// Shared-cache requests served from a stored artifact.
    pub cache_hits: u64,
    /// Shared-cache requests that ran the underlying full verification.
    pub cache_misses: u64,
    /// Distinct content addresses in the shared cache.
    pub cache_entries: u64,
}

/// A metrics render ([`Reply::Metrics`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsText {
    /// The exposition format version (`0.0.4`, the Prometheus text
    /// format).
    pub format: String,
    /// The registry rendered as Prometheus text: `# HELP`/`# TYPE`
    /// comment pairs followed by one sample line per series. Newlines are
    /// JSON-escaped on the wire; unescape to feed a Prometheus parser.
    pub text: String,
}

/// The exposition format tag of [`MetricsText::format`].
pub const METRICS_FORMAT: &str = "0.0.4";

/// A closed session's tally ([`Reply::Closed`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSummary {
    /// The closed session id.
    pub session: u64,
    /// The client's label, echoed.
    pub label: String,
    /// Deltas absorbed over the session's lifetime.
    pub deltas: u64,
    /// Deltas whose verdict was `proved`.
    pub proved: u64,
    /// Deltas whose verdict was `refuted`.
    pub refuted: u64,
    /// Deltas whose verdict was `unknown`.
    pub unknown: u64,
}

/// Backpressure details ([`Reply::Busy`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusyInfo {
    /// The session whose inbox is full.
    pub session: u64,
    /// Deltas currently queued (equals `capacity` when busy).
    pub pending: u64,
    /// The inbox bound.
    pub capacity: u64,
}

/// Machine-readable failure class ([`Reply::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The line was not a well-formed `Request` (unparseable JSON, missing
    /// fields, or an unknown command tag).
    MalformedRequest,
    /// The `v` field named a protocol this server does not speak.
    UnsupportedVersion,
    /// The referenced session id is not (or no longer) registered.
    UnknownSession,
    /// The opened problem is invalid (dimension mismatch, empty network,
    /// malformed boxes) or a resume checkpoint failed to decode.
    InvalidProblem,
    /// A delta was structurally inapplicable to its session (architecture
    /// change, non-enlargement, wrong arity) — the session stays usable.
    DeltaFailed,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self {
            ErrorCode::MalformedRequest => "malformed-request",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::InvalidProblem => "invalid-problem",
            ErrorCode::DeltaFailed => "delta-failed",
            ErrorCode::ShuttingDown => "shutting-down",
        };
        f.write_str(tag)
    }
}

/// Failure details ([`Reply::Error`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorInfo {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable context (never required for dispatch).
    pub message: String,
}

impl ErrorInfo {
    /// Builds failure details.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }
}

/// Serializes a message to its one-line wire form (no trailing newline).
///
/// # Errors
///
/// Returns [`serde_json::Error`] if encoding fails.
pub fn encode<T: Serialize>(msg: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string(msg)
}

/// Parses one wire line as a message.
///
/// # Errors
///
/// Returns [`serde_json::Error`] on malformed JSON or a shape mismatch.
pub fn decode<T: Deserialize>(line: &str) -> Result<T, serde_json::Error> {
    serde_json::from_str(line.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use covern_nn::{Activation, NetworkBuilder};

    fn tiny_net() -> Network {
        NetworkBuilder::new(1).dense_from_rows(&[&[2.0]], &[0.5], Activation::Relu).build().unwrap()
    }

    #[test]
    fn requests_roundtrip_all_commands() {
        let net = tiny_net();
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        let cmds = vec![
            Command::Hello,
            Command::Open(OpenParams {
                label: "s".into(),
                network: net.clone(),
                din: b.clone(),
                dout: b.clone(),
                domain: DomainKind::Box,
                margin: Margin::NONE,
                closed_loop: None,
            }),
            Command::Resume(ResumeParams { label: "r".into(), state: "{}".into() }),
            Command::Delta(DeltaParams { session: 7, delta: DeltaEvent::DomainEnlarged(b) }),
            Command::Checkpoint(SessionRef { session: 7 }),
            Command::Stats,
            Command::Metrics,
            Command::Close(SessionRef { session: 7 }),
            Command::Shutdown,
        ];
        for (i, cmd) in cmds.into_iter().enumerate() {
            let line = encode(&Request::new(i as u64, cmd)).unwrap();
            assert!(!line.contains('\n'), "wire form must be one line");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back.id, i as u64);
            assert_eq!(back.v, PROTOCOL_VERSION);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let replies = vec![
            Reply::Hello(ServerInfo {
                protocol: PROTOCOL_VERSION.into(),
                server: "covern-service/0.1.0".into(),
                session_threads: 2,
                inbox_capacity: 32,
            }),
            Reply::Opened(SessionOpened {
                session: 1,
                label: "s".into(),
                outcome: "proved".into(),
                wall_us: 99,
            }),
            Reply::Stats(StatsSnapshot {
                sessions_open: 1,
                sessions_opened: 2,
                deltas_applied: 3,
                cache_hits: 4,
                cache_misses: 5,
                cache_entries: 5,
            }),
            Reply::Metrics(MetricsText {
                format: METRICS_FORMAT.into(),
                text: "# TYPE covern_sessions_open gauge\ncovern_sessions_open 1\n".into(),
            }),
            Reply::ShuttingDown,
            Reply::Busy(BusyInfo { session: 1, pending: 32, capacity: 32 }),
            Reply::Error(ErrorInfo::new(ErrorCode::UnknownSession, "no session 9")),
        ];
        for (i, reply) in replies.into_iter().enumerate() {
            let line = encode(&Response::new(i as u64, reply)).unwrap();
            let back: Response = decode(&line).unwrap();
            assert_eq!(back.id, i as u64);
        }
    }

    #[test]
    fn error_codes_have_stable_display_tags() {
        assert_eq!(ErrorCode::MalformedRequest.to_string(), "malformed-request");
        assert_eq!(ErrorCode::ShuttingDown.to_string(), "shutting-down");
        // The wire form is the variant name (externally tagged).
        assert_eq!(encode(&ErrorCode::UnknownSession).unwrap(), "\"UnknownSession\"");
    }

    #[test]
    fn open_params_tolerate_missing_closed_loop_and_roundtrip_specs() {
        // A pre-closed-loop client's Open line (no `closed_loop` key)
        // still decodes, as None.
        let b = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
        let legacy = Command::Open(OpenParams {
            label: "legacy".into(),
            network: tiny_net(),
            din: b.clone(),
            dout: b.clone(),
            domain: DomainKind::Box,
            margin: Margin::NONE,
            closed_loop: None,
        });
        let line = encode(&Request::new(1, legacy)).unwrap();
        let stripped = line.replace(",\"closed_loop\":null", "");
        assert_ne!(stripped, line, "the optional field is always present on the wire");
        let back: Request = decode(&stripped).unwrap();
        let Command::Open(p) = back.cmd else { panic!("kind changed in flight") };
        assert!(p.closed_loop.is_none());

        // A closed-loop spec survives the wire bit-exactly.
        let spec = covern_closedloop::ClosedLoopSpec {
            plant: covern_closedloop::AffinePlant::new(
                &covern_tensor::Matrix::from_rows(&[&[0.5]]),
                &covern_tensor::Matrix::from_rows(&[&[0.25]]),
                &[0.0],
            )
            .unwrap(),
            init: BoxDomain::from_bounds(&[(-0.5, 0.5)]).unwrap(),
            unsafe_region: BoxDomain::from_bounds(&[(0.9, 10.0)]).unwrap(),
            horizon: 10,
            max_generators: 12,
            sample_limit: 16,
        };
        let looped = Command::Open(OpenParams {
            label: "loop".into(),
            network: tiny_net(),
            din: spec.init.clone(),
            dout: spec.unsafe_region.clone(),
            domain: DomainKind::Zonotope,
            margin: Margin::NONE,
            closed_loop: Some(spec.clone()),
        });
        let line = encode(&Request::new(2, looped)).unwrap();
        let back: Request = decode(&line).unwrap();
        let Command::Open(p) = back.cmd else { panic!("kind changed in flight") };
        assert_eq!(p.closed_loop.as_ref(), Some(&spec));
    }

    #[test]
    fn unknown_command_tags_fail_to_decode() {
        let line = format!("{{\"v\":\"{PROTOCOL_VERSION}\",\"id\":1,\"cmd\":\"Explode\"}}");
        assert!(decode::<Request>(&line).is_err());
        assert!(decode::<Request>("not json").is_err());
    }
}
