//! Sessions and the process-wide session registry.
//!
//! A **session** is one client's continuous-engineering stream: the
//! [`ContinuousVerifier`] holding the current problem and proof artifacts,
//! plus a bounded **inbox** of deltas waiting to be absorbed. Deltas are
//! absorbed strictly in submission order by at most one *drain task* at a
//! time (see `dispatch`); the inbox bound is the service's backpressure
//! seam — when it is full the dispatcher answers `Busy` instead of
//! queueing, so a client that outpaces the verifier is told so instead of
//! growing the server's memory without limit.
//!
//! The [`SessionRegistry`] maps process-unique ids to live sessions.
//! Session ids are never reused within a server's lifetime, so a stale id
//! after `Close` yields `UnknownSession` rather than aliasing a newer
//! session.

use crate::dispatch::Respond;
use crate::protocol::{SessionSummary, VerdictEvent};
use covern_campaign::report::EventRecord;
use covern_campaign::DeltaEvent;
use covern_closedloop::LoopVerifier;
use covern_core::pipeline::ContinuousVerifier;
use covern_core::CoreError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One queued delta awaiting its session's drain task.
pub(crate) struct QueuedDelta {
    /// Correlation id of the originating request.
    pub id: u64,
    /// The delta to absorb.
    pub delta: DeltaEvent,
    /// Where the verdict (or failure) reply goes.
    pub responder: Arc<dyn Respond>,
}

/// The bounded inbox; `running` marks an active drain task. Both are
/// mutated only under the one lock, which is what makes the
/// pop-empty/enqueue race-free: a drain task that observes an empty queue
/// clears `running` in the same critical section, so a concurrent enqueue
/// either lands before (and is popped) or after (and starts a new drain).
struct Inbox {
    queue: VecDeque<QueuedDelta>,
    running: bool,
}

/// Outcome of [`Session::try_enqueue`].
pub(crate) enum Enqueue {
    /// Queued, and no drain task was active: the caller must start one.
    StartDrain,
    /// Queued behind an active drain task.
    Queued,
    /// The inbox is full; the caller must answer `Busy`.
    Busy {
        /// Deltas currently queued.
        pending: u64,
    },
}

/// The two verifier kinds a session can host: the open-loop
/// continuous-engineering pipeline, or the closed-loop reach-tube
/// verifier (controller + plant). The delta stream is shared — both
/// absorb [`DeltaEvent`]s, reinterpreted per kind.
pub enum SessionVerifier {
    /// Open-loop `φ(f, Din, Dout)` pipeline.
    Continuous(ContinuousVerifier),
    /// Closed-loop reach-tube propagation.
    Loop(LoopVerifier),
}

/// A live verification session (see module docs).
pub struct Session {
    id: u64,
    label: String,
    /// The session's verifier. Locked by the drain task for the duration
    /// of each delta (deltas of one session are sequential by design) and
    /// briefly by `Checkpoint`, which therefore snapshots between deltas.
    verifier: Mutex<SessionVerifier>,
    inbox: Mutex<Inbox>,
    seq: AtomicU64,
    deltas: AtomicU64,
    proved: AtomicU64,
    refuted: AtomicU64,
    unknown: AtomicU64,
}

impl Session {
    fn new(id: u64, label: String, verifier: SessionVerifier) -> Self {
        Self {
            id,
            label,
            verifier: Mutex::new(verifier),
            inbox: Mutex::new(Inbox { queue: VecDeque::new(), running: false }),
            seq: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            proved: AtomicU64::new(0),
            refuted: AtomicU64::new(0),
            unknown: AtomicU64::new(0),
        }
    }

    /// The process-unique session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The client-chosen label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Tries to queue a delta, honouring the inbox bound.
    pub(crate) fn try_enqueue(&self, item: QueuedDelta, capacity: usize) -> Enqueue {
        let mut inbox = self.inbox.lock().expect("inbox lock");
        if inbox.queue.len() >= capacity {
            return Enqueue::Busy { pending: inbox.queue.len() as u64 };
        }
        inbox.queue.push_back(item);
        covern_observe::metrics().inbox_depth.inc();
        if inbox.running {
            Enqueue::Queued
        } else {
            inbox.running = true;
            Enqueue::StartDrain
        }
    }

    /// Pops the next queued delta, or — atomically with observing an empty
    /// queue — marks the drain task finished and returns `None`.
    pub(crate) fn pop_or_finish(&self) -> Option<QueuedDelta> {
        let mut inbox = self.inbox.lock().expect("inbox lock");
        match inbox.queue.pop_front() {
            Some(item) => {
                covern_observe::metrics().inbox_depth.dec();
                Some(item)
            }
            None => {
                inbox.running = false;
                None
            }
        }
    }

    /// Whether no delta is queued or in flight.
    pub fn is_idle(&self) -> bool {
        let inbox = self.inbox.lock().expect("inbox lock");
        inbox.queue.is_empty() && !inbox.running
    }

    /// Applies one delta on the session's verifier, records the verdict in
    /// the running tallies, and returns the wire event.
    ///
    /// # Errors
    ///
    /// Returns the failure message when the delta is structurally
    /// inapplicable (architecture change, non-enlargement, arity or
    /// dimension mismatch); the session state is unchanged and stays
    /// usable. The message is the underlying error's display form — the
    /// same string a single-process campaign records — so cluster and
    /// local reports stay byte-comparable.
    pub(crate) fn apply(
        &self,
        delta: &DeltaEvent,
        method: &covern_core::LocalMethod,
    ) -> Result<VerdictEvent, String> {
        let mut verifier = self.verifier.lock().map_err(|_| poisoned().to_string())?;
        let record = match &mut *verifier {
            SessionVerifier::Continuous(v) => {
                let report = covern_campaign::runner::apply_event(v, delta, method)
                    .map_err(|e| e.to_string())?;
                EventRecord::from_report(&delta.kind(), &report)
            }
            SessionVerifier::Loop(v) => {
                let report = covern_campaign::runner::apply_loop_event(v, delta)
                    .map_err(|e| e.to_string())?;
                EventRecord::from_loop_report(&delta.kind(), &report)
            }
        };
        drop(verifier);
        self.deltas.fetch_add(1, Ordering::Relaxed);
        match record.outcome.as_str() {
            "proved" => &self.proved,
            "refuted" => &self.refuted,
            _ => &self.unknown,
        }
        .fetch_add(1, Ordering::Relaxed);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        Ok(VerdictEvent { session: self.id, seq, record })
    }

    /// Serializes the verifier state between deltas.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Substrate`] on encoding failure.
    pub fn checkpoint(&self) -> Result<String, CoreError> {
        match &*self.verifier.lock().map_err(|_| poisoned())? {
            SessionVerifier::Continuous(v) => v.checkpoint_json(),
            SessionVerifier::Loop(v) => {
                v.checkpoint_json().map_err(|e| CoreError::Substrate(e.to_string()))
            }
        }
    }

    /// The session's lifetime tally.
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            session: self.id,
            label: self.label.clone(),
            deltas: self.deltas.load(Ordering::Relaxed),
            proved: self.proved.load(Ordering::Relaxed),
            refuted: self.refuted.load(Ordering::Relaxed),
            unknown: self.unknown.load(Ordering::Relaxed),
        }
    }
}

/// The error a session reports once a panic has poisoned its verifier
/// lock: its state may be inconsistent, so it refuses further work
/// instead of guessing (close it and resume from an earlier checkpoint).
fn poisoned() -> CoreError {
    CoreError::Substrate(
        "session verifier poisoned by an earlier panic; close the session and resume from a \
         checkpoint"
            .into(),
    )
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("label", &self.label)
            .field("idle", &self.is_idle())
            .finish()
    }
}

/// The process-wide id → session map (see module docs).
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_id: AtomicU64,
    opened: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry; the first session gets id 1.
    pub fn new() -> Self {
        Self {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            opened: AtomicU64::new(0),
        }
    }

    /// Registers a fresh session around `verifier` and returns it.
    pub fn insert(&self, label: String, verifier: SessionVerifier) -> Arc<Session> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session::new(id, label, verifier));
        self.sessions.lock().expect("registry lock").insert(id, Arc::clone(&session));
        self.opened.fetch_add(1, Ordering::Relaxed);
        session
    }

    /// Looks up a live session.
    pub fn get(&self, id: u64) -> Option<Arc<Session>> {
        self.sessions.lock().expect("registry lock").get(&id).cloned()
    }

    /// Unregisters a session (queued work it still holds will finish).
    pub fn remove(&self, id: u64) -> Option<Arc<Session>> {
        self.sessions.lock().expect("registry lock").remove(&id)
    }

    /// Number of currently registered sessions.
    pub fn open_count(&self) -> u64 {
        self.sessions.lock().expect("registry lock").len() as u64
    }

    /// Number of sessions ever registered.
    pub fn opened_total(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }
}
