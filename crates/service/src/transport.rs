//! Transports: newline-delimited JSON over stdio and TCP.
//!
//! Both transports are thin line pumps around [`Service::handle_line`]:
//! read one line, dispatch, repeat until EOF or until the dispatcher
//! acknowledges `Shutdown` (`ControlFlow::Break`). Verdicts are pushed by
//! session drain tasks through the connection's shared writer, so a
//! pipelining client sees replies interleaved across its sessions but in
//! submission order within each one.
//!
//! * [`serve_stdio`] — one connection on stdin/stdout; the transport of
//!   supervised deployments (systemd, container entrypoints, test
//!   harnesses driving a child process).
//! * [`serve_tcp`] — a listener accepting any number of concurrent
//!   connections, one reader thread each, all dispatching into the same
//!   [`Service`] (and therefore the same process-wide cache).

use crate::dispatch::{Respond, Service, WriterResponder};
use covern_observe::{metrics, obs_info};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a blocked TCP reader re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Process-wide connection ids for log correlation (never on the wire).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// Serves one connection over arbitrary reader/writer halves (the stdio
/// path, and directly usable by in-process tests).
///
/// Returns when the reader hits EOF, a non-recoverable read error occurs,
/// or the dispatcher acknowledges shutdown.
///
/// # Errors
///
/// Returns [`std::io::Error`] from the reader.
pub fn serve_lines(
    service: &Service,
    reader: impl BufRead,
    writer: Box<dyn Write + Send>,
) -> std::io::Result<()> {
    let responder: Arc<dyn Respond> = Arc::new(WriterResponder::new(writer));
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if service.handle_line(&line, &responder).is_break() {
            break;
        }
    }
    Ok(())
}

/// Serves the process's stdin/stdout (see module docs). Blocks until EOF
/// or shutdown.
///
/// # Errors
///
/// Returns [`std::io::Error`] from stdin.
pub fn serve_stdio(service: &Service) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    serve_lines(service, stdin.lock(), Box::new(std::io::stdout()))
}

/// A running TCP server handle.
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the server has shut down (a client sent `Shutdown`)
    /// and every connection thread has exited.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        // Detach rather than join: a dropped handle must not hang its
        // owner when no client ever sends Shutdown.
        self.accept.take();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves connections until a
/// client sends `Shutdown`. Returns immediately; use
/// [`TcpServer::join`] to wait for termination.
///
/// # Errors
///
/// Returns [`std::io::Error`] if binding fails.
pub fn serve_tcp(service: Arc<Service>, addr: &str) -> std::io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let accept = std::thread::spawn(move || accept_loop(&listener, &service));
    Ok(TcpServer { local_addr, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>) {
    let local_addr = listener.local_addr().ok();
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if service.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        metrics().connections_accepted_total.inc();
        let service = Arc::clone(service);
        connections.push(std::thread::spawn(move || connection_loop(stream, &service, local_addr)));
    }
    for c in connections {
        let _ = c.join();
    }
}

/// Pumps one TCP connection. Reads use a short timeout so the thread
/// notices a shutdown initiated on a *different* connection; partial lines
/// accumulated across timeouts are preserved (`read_line` keeps already
/// read bytes in the buffer on error).
fn connection_loop(stream: TcpStream, service: &Arc<Service>, local_addr: Option<SocketAddr>) {
    let conn = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown".to_owned());
    metrics().connections_active.inc();
    obs_info!("connection accepted", conn = conn, peer = peer);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        metrics().connections_active.dec();
        obs_info!("connection closed", conn = conn, peer = peer);
        return;
    };
    let responder: Arc<dyn Respond> = Arc::new(WriterResponder::new(Box::new(write_half)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let flow = if line.trim().is_empty() {
                    ControlFlow::Continue(())
                } else {
                    service.handle_line(&line, &responder)
                };
                line.clear();
                if flow.is_break() {
                    // Shutdown acknowledged on this connection: wake the
                    // accept loop so it observes the flag and stops.
                    if let Some(addr) = local_addr {
                        let _ = TcpStream::connect_timeout(&wake_addr(addr), READ_POLL);
                    }
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if service.is_shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    metrics().connections_active.dec();
    obs_info!("connection closed", conn = conn, peer = peer);
}

/// The address the shutdown self-wake connects to. A daemon bound to a
/// wildcard address (`0.0.0.0` / `::`) cannot reliably connect *to* that
/// address on every platform, so the wake targets the loopback of the
/// same family and port instead.
fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServiceConfig;
    use crate::protocol::{Command, Reply, Request, Response};

    #[test]
    fn wake_addr_redirects_wildcards_to_loopback() {
        let v4: SocketAddr = "0.0.0.0:7071".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:7071".parse().unwrap());
        let v6: SocketAddr = "[::]:7071".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:7071".parse().unwrap());
        let concrete: SocketAddr = "192.168.1.5:9".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
    }

    #[test]
    fn tcp_shutdown_terminates_a_wildcard_bound_server() {
        use crate::client::Client;
        let service = Service::new(ServiceConfig::default());
        let server = serve_tcp(service, "0.0.0.0:0").unwrap();
        let mut addr = server.local_addr();
        addr.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        // join() returning proves the accept loop was woken despite the
        // wildcard bind.
        server.join();
    }

    #[test]
    fn serve_lines_answers_hello_and_stops_on_shutdown() {
        let service = Service::new(ServiceConfig::default());
        let hello = crate::protocol::encode(&Request::new(1, Command::Hello)).unwrap();
        let bye = crate::protocol::encode(&Request::new(2, Command::Shutdown)).unwrap();
        // A trailing line after Shutdown must never be dispatched.
        let input = format!("{hello}\n\n{bye}\n{hello}\n");

        let out = Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
        struct SharedOut(Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        serve_lines(&service, input.as_bytes(), Box::new(SharedOut(Arc::clone(&out)))).unwrap();

        let out = out.lock().unwrap();
        let lines: Vec<Response> = String::from_utf8(out.clone())
            .unwrap()
            .lines()
            .map(|l| crate::protocol::decode(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 2, "hello + shutdown ack, nothing after");
        assert!(matches!(lines[0].reply, Reply::Hello(_)));
        assert!(matches!(lines[1].reply, Reply::ShuttingDown));
        assert!(service.is_shutting_down());
    }
}
