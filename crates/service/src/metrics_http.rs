//! A plain-HTTP `/metrics` endpoint for Prometheus-style scrapers.
//!
//! The protocol already exposes the registry via the `Metrics` request,
//! but a scraper should not have to speak `covern-protocol-v1` to read
//! counters. This module serves the same render over the smallest
//! possible HTTP/1.1 surface: `GET /metrics` answers `200` with
//! `text/plain; version=0.0.4` (the Prometheus text exposition format),
//! anything else answers `404`, every response closes the connection.
//!
//! The listener is **diagnostics-only**: it shares no state with the
//! protocol transports beyond the process-wide
//! [`covern_observe::metrics()`] registry and the service's shutdown flag
//! (it polls the flag and exits once the daemon is draining). It is off
//! by default and enabled with `covern_cli serve --metrics-http ADDR`.

use crate::dispatch::Service;
use covern_observe::{metrics, obs_info};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(100);

/// Per-request budget: a scraper that stalls mid-request must not pin the
/// (single) serving thread past this. The budget covers the *whole*
/// request read — request line and header drain together — not each
/// individual socket read, so a client trickling headers cannot extend
/// its welcome indefinitely.
const REQUEST_TIMEOUT: Duration = Duration::from_millis(500);

/// Upper bound on total header bytes accepted per request; past this the
/// request is answered `400` rather than buffered further.
const MAX_HEADER_BYTES: usize = 8 * 1024;

/// A running `/metrics` HTTP listener handle.
#[derive(Debug)]
pub struct MetricsHttpServer {
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl MetricsHttpServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the listener has exited (the service shut down).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        // Detach rather than join — the poll loop exits on its own once
        // the service shuts down.
        self.accept.take();
    }
}

/// Binds `addr` and serves `GET /metrics` until `service` starts
/// shutting down. Returns immediately.
///
/// # Errors
///
/// Returns [`std::io::Error`] if binding fails.
pub fn serve_metrics_http(service: Arc<Service>, addr: &str) -> std::io::Result<MetricsHttpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    obs_info!("metrics http listening", addr = local_addr);
    let accept = std::thread::spawn(move || accept_loop(&listener, &service));
    Ok(MetricsHttpServer { local_addr, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>) {
    loop {
        if service.is_shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_scrape(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Answers one HTTP request on `stream`. Serial by design: a scrape is a
/// render-and-write of an in-memory registry, so concurrency would buy
/// nothing and a thread per scraper is a thread too many.
fn handle_scrape(stream: TcpStream) {
    let deadline = std::time::Instant::now() + REQUEST_TIMEOUT;
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_write_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() || request_line.trim().is_empty() {
        // Timed-out, reset, or empty request: answer 400 (best-effort —
        // the client may already be gone) and record the failure so it
        // shows up in the very registry being scraped.
        respond_bad_request(reader.into_inner());
        return;
    }
    // Drain the headers to the blank line so the client sees a clean
    // close — bounded by the remaining request budget and by
    // MAX_HEADER_BYTES, so neither a trickling nor a flooding client can
    // pin the serving thread.
    if !drain_headers(&mut reader, deadline) {
        respond_bad_request(reader.into_inner());
        return;
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let m = metrics();
        m.metrics_scrapes_total.inc();
        let body = m.render_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; \
             charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "covern: only GET /metrics is served here\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; \
             charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Reads header lines until the blank line that ends the request head.
/// Returns `false` — malformed — on a read error, on EOF before the blank
/// line, when the accumulated headers exceed [`MAX_HEADER_BYTES`], or
/// when `deadline` passes (each socket read's timeout is clamped to the
/// time remaining, so the whole drain observes the one request budget).
fn drain_headers(reader: &mut BufReader<TcpStream>, deadline: std::time::Instant) -> bool {
    let mut header = String::new();
    let mut total = 0usize;
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return false;
        }
        let _ = reader.get_ref().set_read_timeout(Some(remaining));
        header.clear();
        match reader.read_line(&mut header) {
            Err(_) => return false,
            Ok(0) => return false,
            Ok(n) => {
                if header.trim().is_empty() {
                    return true;
                }
                total += n;
                if total > MAX_HEADER_BYTES {
                    return false;
                }
            }
        }
    }
}

/// Best-effort `400` answer for requests that never parsed (timed out,
/// truncated, oversized, or empty), counted in the registry as a scrape
/// error.
fn respond_bad_request(mut stream: TcpStream) {
    metrics().metrics_scrape_errors_total.inc();
    let body = "covern: malformed or timed-out request\n";
    let response = format!(
        "HTTP/1.1 400 Bad Request\r\nContent-Type: text/plain; \
         charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServiceConfig;
    use std::io::Read;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrape_returns_prometheus_text() {
        let service = Service::new(ServiceConfig::default());
        let server = serve_metrics_http(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("# TYPE covern_requests_total counter"));
        assert!(response.contains("covern_sessions_open "));
    }

    #[test]
    fn headers_arriving_in_delayed_chunks_still_get_200() {
        let service = Service::new(ServiceConfig::default());
        let server = serve_metrics_http(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // The head split across two writes with a pause well inside the
        // request budget: the drain must wait for the blank line instead
        // of serving (or hanging) early.
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n").unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        write!(stream, "X-Scraper: test\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("\r\nConnection: close\r\n"), "{response}");
        assert!(response.contains("\r\nContent-Length: "), "{response}");
        // The advertised length matches the delivered body.
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let advertised: usize =
            head.lines().find_map(|l| l.strip_prefix("Content-Length: ")).unwrap().parse().unwrap();
        assert_eq!(advertised, body.len());
    }

    #[test]
    fn truncated_requests_get_400_and_are_counted() {
        let service = Service::new(ServiceConfig::default());
        let server = serve_metrics_http(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let errors_before = metrics().metrics_scrape_errors_total.get();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A head that ends (EOF) before the blank line is malformed.
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n").unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{response}");
        assert!(response.contains("\r\nConnection: close\r\n"), "{response}");
        assert!(response.contains("\r\nContent-Length: "), "{response}");
        // The registry is process-wide (other tests may also err), so
        // assert the counter moved, not its absolute value.
        assert!(
            metrics().metrics_scrape_errors_total.get() > errors_before,
            "scrape errors must surface in the registry"
        );
    }

    #[test]
    fn non_metrics_paths_get_404_and_shutdown_stops_the_loop() {
        let service = Service::new(ServiceConfig::default());
        let server = serve_metrics_http(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let response = http_get(server.local_addr(), "/health");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        // Flip the shutdown flag through the protocol path and confirm the
        // poll loop exits.
        use crate::dispatch::Respond;
        use crate::protocol::{Command, Request, Response};
        struct Sink;
        impl Respond for Sink {
            fn send(&self, _: &Response) {}
        }
        let responder: Arc<dyn Respond> = Arc::new(Sink);
        let _ = service.handle_request(Request::new(1, Command::Shutdown), &responder);
        server.join();
    }
}
