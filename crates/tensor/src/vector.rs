//! Free functions on `&[f64]` vectors.
//!
//! Vectors throughout the workspace are plain `Vec<f64>` / `&[f64]`; these
//! helpers provide the handful of numeric kernels (dot products, norms,
//! distances) that the verifiers and the Lipschitz estimators share.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha * x` in place.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// L1 norm (sum of absolute values).
pub fn norm_l1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Euclidean (L2) norm.
pub fn norm_l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// L∞ norm (maximum absolute value, `0.0` for an empty vector).
pub fn norm_linf(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// L2 distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dist_l2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// L∞ distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dist_linf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist length mismatch");
    a.iter().zip(b.iter()).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Normalises `v` to unit L2 norm in place; returns the original norm.
///
/// Leaves the all-zero vector untouched and returns `0.0`.
pub fn normalize_l2(v: &mut [f64]) -> f64 {
    let n = norm_l2(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_of_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn norms_on_simple_vector() {
        let v = [3.0, -4.0];
        assert_eq!(norm_l1(&v), 7.0);
        assert_eq!(norm_l2(&v), 5.0);
        assert_eq!(norm_linf(&v), 4.0);
    }

    #[test]
    fn distances_are_zero_on_equal() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(dist_l2(&v, &v), 0.0);
        assert_eq!(dist_linf(&v, &v), 0.0);
    }

    #[test]
    fn normalize_handles_zero() {
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize_l2(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_norm_ordering(v in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
            // Standard norm inequalities: ||v||_inf <= ||v||_2 <= ||v||_1.
            let (l1, l2, linf) = (norm_l1(&v), norm_l2(&v), norm_linf(&v));
            prop_assert!(linf <= l2 + 1e-9);
            prop_assert!(l2 <= l1 + 1e-9);
        }

        #[test]
        fn prop_triangle_inequality_l2(
            a in proptest::collection::vec(-50.0f64..50.0, 5),
            b in proptest::collection::vec(-50.0f64..50.0, 5),
            c in proptest::collection::vec(-50.0f64..50.0, 5),
        ) {
            prop_assert!(dist_l2(&a, &c) <= dist_l2(&a, &b) + dist_l2(&b, &c) + 1e-9);
        }

        #[test]
        fn prop_normalized_has_unit_norm(
            v in proptest::collection::vec(-50.0f64..50.0, 1..10)
                .prop_filter("nonzero", |v| norm_l2(v) > 1e-6)
        ) {
            let mut v = v;
            normalize_l2(&mut v);
            prop_assert!((norm_l2(&v) - 1.0).abs() < 1e-9);
        }
    }
}
