//! Operator norms of matrices.
//!
//! A Lipschitz constant of the affine map `x ↦ Wx + b` under a given vector
//! norm is the corresponding *operator norm* of `W`; these functions are the
//! numeric core of [`covern-lipschitz`](https://docs.rs/covern-lipschitz).
//!
//! * `‖W‖_∞` — maximum absolute row sum (Lipschitz under `‖·‖_∞`),
//! * `‖W‖_1` — maximum absolute column sum (Lipschitz under `‖·‖_1`),
//! * `‖W‖_2` — spectral norm, estimated by power iteration on `WᵀW` with a
//!   certified upper bound via `sqrt(‖W‖_1 · ‖W‖_∞)`.

use crate::matrix::Matrix;
use crate::vector;

/// Maximum absolute row sum: the operator norm induced by `‖·‖_∞`.
pub fn operator_norm_linf(w: &Matrix) -> f64 {
    (0..w.rows()).map(|i| vector::norm_l1(w.row(i))).fold(0.0, f64::max)
}

/// Maximum absolute column sum: the operator norm induced by `‖·‖_1`.
pub fn operator_norm_l1(w: &Matrix) -> f64 {
    // Column traversal via the non-allocating view: this runs once per layer
    // inside every Lipschitz certificate, so no per-column Vec.
    (0..w.cols()).map(|j| w.col_iter(j).map(f64::abs).sum::<f64>()).fold(0.0, f64::max)
}

/// Power-iteration estimate of the spectral norm `‖W‖_2`.
///
/// Runs `iters` iterations of power iteration on `WᵀW` starting from a
/// deterministic seed vector. The returned value converges to the largest
/// singular value from below; callers needing a *sound upper* bound should
/// use [`spectral_norm_upper`].
pub fn spectral_norm_power(w: &Matrix, iters: usize) -> f64 {
    if w.rows() == 0 || w.cols() == 0 {
        return 0.0;
    }
    // Deterministic start vector biased away from any single axis so that
    // it is unlikely to be orthogonal to the dominant singular vector.
    let mut v: Vec<f64> = (0..w.cols()).map(|i| 1.0 + (i as f64 * 0.7919).sin() * 0.5).collect();
    vector::normalize_l2(&mut v);
    let mut sigma = 0.0;
    for _ in 0..iters.max(1) {
        let wv = w.matvec(&v);
        sigma = vector::norm_l2(&wv);
        if sigma == 0.0 {
            return 0.0;
        }
        let mut next = w.matvec_transposed(&wv);
        if vector::normalize_l2(&mut next) == 0.0 {
            return sigma;
        }
        v = next;
    }
    sigma
}

/// Sound upper bound on the spectral norm: `sqrt(‖W‖_1 · ‖W‖_∞)`.
///
/// This is the classical Hölder interpolation bound; it never underestimates
/// `‖W‖_2`, making it safe for use inside soundness-critical Lipschitz
/// certificates.
pub fn spectral_norm_upper(w: &Matrix) -> f64 {
    (operator_norm_l1(w) * operator_norm_linf(w)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn norms_of_identity_are_one() {
        let id = Matrix::identity(4);
        assert_eq!(operator_norm_linf(&id), 1.0);
        assert_eq!(operator_norm_l1(&id), 1.0);
        assert!((spectral_norm_power(&id, 20) - 1.0).abs() < 1e-9);
        assert!((spectral_norm_upper(&id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_sums_on_asymmetric_matrix() {
        let w = Matrix::from_rows(&[&[1.0, -2.0, 3.0], &[0.0, 4.0, 0.0]]);
        assert_eq!(operator_norm_linf(&w), 6.0); // row 0: 1+2+3
        assert_eq!(operator_norm_l1(&w), 6.0); // col 1: 2+4
    }

    #[test]
    fn spectral_norm_of_diagonal_is_max_entry() {
        let w = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]);
        let est = spectral_norm_power(&w, 100);
        assert!((est - 7.0).abs() < 1e-6, "estimate {est}");
        assert!(spectral_norm_upper(&w) >= 7.0 - 1e-12);
    }

    #[test]
    fn spectral_norm_of_rank_one() {
        // W = u vᵀ with ‖u‖=5, ‖v‖=sqrt(2) has spectral norm 5·sqrt(2).
        let w = Matrix::from_rows(&[&[3.0, 3.0], &[4.0, 4.0]]);
        let expected = 5.0 * 2.0_f64.sqrt();
        assert!((spectral_norm_power(&w, 100) - expected).abs() < 1e-6);
        assert!(spectral_norm_upper(&w) >= expected - 1e-9);
    }

    #[test]
    fn empty_matrix_has_zero_norm() {
        let w = Matrix::zeros(0, 3);
        assert_eq!(spectral_norm_power(&w, 10), 0.0);
    }

    fn small_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-5.0f64..5.0, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data))
        })
    }

    proptest! {
        #[test]
        fn prop_power_estimate_below_upper_bound(m in small_matrix()) {
            let est = spectral_norm_power(&m, 60);
            let ub = spectral_norm_upper(&m);
            prop_assert!(est <= ub + 1e-6, "power {est} vs upper {ub}");
        }

        #[test]
        fn prop_operator_norm_bounds_matvec(m in small_matrix()) {
            // ‖Wx‖_inf <= ‖W‖_inf ‖x‖_inf for a concrete x.
            let x: Vec<f64> = (0..m.cols()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
            let y = m.matvec(&x);
            let lhs = crate::vector::norm_linf(&y);
            let rhs = operator_norm_linf(&m) * crate::vector::norm_linf(&x);
            prop_assert!(lhs <= rhs + 1e-9);
        }
    }
}
