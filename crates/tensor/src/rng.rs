//! Deterministic, seedable random number generation.
//!
//! Everything in this reproduction that involves randomness — weight
//! initialisation, training-data shuffles, sampled Lipschitz lower bounds,
//! the vehicle's sensor noise — must be reproducible so that the numbers in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit. `rand`'s `StdRng` is
//! explicitly *not* stable across crate versions, so we pin ChaCha8.

use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic random number generator with convenience samplers.
///
/// # Example
///
/// ```
/// use covern_tensor::Rng;
///
/// let mut a = Rng::seeded(7);
/// let mut b = Rng::seeded(7);
/// assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: ChaCha8Rng,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "uniform requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A vector of `n` uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.uniform(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        let va: Vec<f64> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng::seeded(3);
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = Rng::seeded(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seeded(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_within_range() {
        let mut r = Rng::seeded(6);
        for _ in 0..100 {
            assert!(r.index(7) < 7);
        }
    }
}
