//! Dense linear algebra substrate for the `covern` verification stack.
//!
//! Every higher layer of the stack — the DNN substrate, the abstract
//! interpreters, the MILP encoder, the Lipschitz estimators — works on plain
//! dense `f64` matrices and vectors. The networks verified in the DATE 2021
//! paper (and in this reproduction) are small post-convolution heads, so a
//! straightforward row-major dense representation is both sufficient and the
//! easiest to audit for the floating-point soundness arguments made in
//! `covern-absint`.
//!
//! # Example
//!
//! ```
//! use covern_tensor::Matrix;
//!
//! let w = Matrix::from_rows(&[&[1.0, -2.0], &[-2.0, 1.0], &[1.0, -1.0]]);
//! let x = vec![1.0, 0.5];
//! let y = w.matvec(&x);
//! assert_eq!(y, vec![0.0, -1.5, 0.5]);
//! ```

#![warn(missing_docs)]

pub mod kernels;
pub mod matrix;
pub mod norms;
pub mod rng;
pub mod vector;

pub use matrix::Matrix;
pub use rng::Rng;
