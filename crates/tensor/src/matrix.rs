//! Row-major dense matrix type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major `f64` matrix.
///
/// This is the single weight/data container used across the workspace: DNN
/// layer weights, zonotope generator matrices, LP tableaus and Jacobian
/// bounds all use it.
///
/// # Example
///
/// ```
/// use covern_tensor::Matrix;
///
/// let a = Matrix::identity(2);
/// let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a.matmul(&b), b);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow usize");
        Self { rows, cols, data: vec![0.0; len] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Reads the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Writes the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// Allocates; hot paths that only need to *traverse* a column should use
    /// the non-allocating [`col_iter`](Self::col_iter) instead.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Non-allocating view of column `j`: iterates the column top to bottom
    /// by striding the row-major buffer.
    ///
    /// This is the allocation-free alternative to [`col`](Self::col) for hot
    /// paths (operator norms, transpose packing) that walk columns without
    /// needing an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    ///
    /// # Example
    ///
    /// ```
    /// use covern_tensor::Matrix;
    ///
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// assert_eq!(m.col_iter(1).collect::<Vec<_>>(), vec![2.0, 4.0]);
    /// ```
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        assert!(j < self.cols, "column {j} out of bounds");
        self.data.iter().skip(j).step_by(self.cols.max(1)).copied().take(self.rows)
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = self.row(i);
            for (j, a) in row.iter().enumerate() {
                y[j] += a * xi;
            }
        }
        y
    }

    /// Matrix product `self * other`.
    ///
    /// This is the easy-to-audit naive triple loop, kept as the differential
    /// baseline for [`crate::kernels::matmul`] (which is bit-identical on
    /// finite inputs and what the hot paths use).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Entry-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Maximum absolute entry (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Entry-wise maximum absolute difference with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data.iter().zip(other.data.iter()).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Entry-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Entry-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_shape_and_zero_entries() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn from_rows_roundtrips_entries() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matvec_transposed_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec_transposed(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_are_inverse() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -0.5], &[1.5, -1.5]]);
        let s = &a + &b;
        assert_eq!(&s - &b, a);
    }

    #[test]
    fn max_abs_and_frobenius() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
    }

    fn small_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-10.0f64..10.0, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data))
        })
    }

    proptest! {
        #[test]
        fn prop_matmul_identity_left(m in small_matrix()) {
            let id = Matrix::identity(m.rows());
            prop_assert_eq!(id.matmul(&m), m);
        }

        #[test]
        fn prop_transpose_involution(m in small_matrix()) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_matvec_linear(m in small_matrix(), s in -3.0f64..3.0) {
            let x: Vec<f64> = (0..m.cols()).map(|i| i as f64 - 1.0).collect();
            let sx: Vec<f64> = x.iter().map(|v| v * s).collect();
            let y1 = m.matvec(&sx);
            let y2: Vec<f64> = m.matvec(&x).iter().map(|v| v * s).collect();
            for (a, b) in y1.iter().zip(y2.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_matvec_transposed_consistent(m in small_matrix()) {
            let x: Vec<f64> = (0..m.rows()).map(|i| (i as f64) * 0.5 - 1.0).collect();
            let y1 = m.matvec_transposed(&x);
            let y2 = m.transpose().matvec(&x);
            for (a, b) in y1.iter().zip(y2.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
