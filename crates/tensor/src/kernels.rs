//! Batched, transpose-packed linear-algebra kernels for the reachability
//! hot paths.
//!
//! Every verification path in the workspace — interval / symbolic / zonotope
//! layer transformers, branch-and-bound concrete probes, Lipschitz sampling,
//! campaign replay — bottoms out in dense affine maps. This module provides
//! the shared kernels those paths run on:
//!
//! * [`SplitMatrix`] — a weight matrix pre-split into its positive and
//!   negative parts (both row-major and transpose-packed), the basis of the
//!   **fused interval matvec/matmul** that propagates lower and upper bounds
//!   in a single pass with no per-element sign branches;
//! * [`matmul`] — slice-based axpy matrix product (the zonotope generator
//!   propagation primitive);
//! * [`batch_affine_packed`] / [`batch_affine_nt`] — the batched forward
//!   primitive `X·Wᵀ + b` that turns N-point network evaluation into one
//!   matrix product per layer.
//!
//! # Determinism and bit-compatibility
//!
//! Every kernel accumulates each output element along a **fixed, sequential
//! reduction order** (ascending inner index), independent of batch position
//! and thread count. Two consequences, both load bearing for the
//! continuous-verification pipeline:
//!
//! 1. repeated calls — on any machine, at any thread count — produce
//!    byte-identical results, so the branch-and-bound engine's
//!    schedule-independent-verdict guarantee survives the kernel rewiring;
//! 2. the results are bit-identical to the naive one-vector-at-a-time loops
//!    they replace ([`Matrix::matvec`], [`Matrix::matmul`], the historical
//!    interval transformer), because those used the same reduction order.
//!    `tests/kernel_equivalence.rs` locks this in with property tests.
//!
//! The speed does **not** come from reassociating sums (which would change
//! results): it comes from the *axpy formulation*. Instead of computing each
//! output as an isolated dot product — a serial chain of dependent adds that
//! cannot use SIMD — the kernels broadcast one input element across a
//! contiguous row of outputs, so the compiler vectorises across *independent*
//! accumulators while each accumulator still sees its terms in ascending
//! order. The transpose packing is what makes those output rows contiguous.
//!
//! # Numeric domain
//!
//! Kernels assume **finite** inputs. A `0.0 · ∞` product (possible when a
//! zero weight meets an unbounded interval) yields NaN — exactly as in the
//! naive paths they replace, which multiplied every weight against every
//! bound as well. Target boxes may be unbounded; propagated states are not.

use crate::matrix::Matrix;

/// Adds `a · src` into `dst` element-wise. The vectorisable inner step all
/// kernels are built from; each `dst` element receives exactly one add per
/// call, so reduction order per element is the caller's loop order.
#[inline(always)]
fn axpy(dst: &mut [f64], a: f64, src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += a * s;
    }
}

/// A weight matrix split once into its positive part `max(w, 0)` and
/// negative part `min(w, 0)`, stored both row-major (for coefficient-matrix
/// sweeps) and transpose-packed (for the vectorised interval matvec).
///
/// The split is what makes interval propagation branch-free: with
/// `pos + neg = w` and the parts sign-disjoint,
///
/// ```text
/// lo_out = pos·lo + neg·hi        hi_out = pos·hi + neg·lo
/// ```
///
/// are sound and exact for the affine map, and each output accumulates in
/// plain ascending-index order. Layers cache their split via
/// `covern_nn::DenseLayer::split_weights`, so the split cost is paid once
/// per layer *per network*, not once per propagated box — the difference
/// between O(layers) and O(layers × boxes) splits in branch-and-bound.
///
/// # Example
///
/// ```
/// use covern_tensor::{kernels::SplitMatrix, Matrix};
///
/// let w = Matrix::from_rows(&[&[1.0, -2.0]]);
/// let s = SplitMatrix::compile(&w);
/// let (mut lo, mut hi) = (vec![0.0], vec![0.0]);
/// s.fused_interval_matvec(&[-1.0, -1.0], &[1.0, 1.0], &[0.0], &mut lo, &mut hi);
/// assert_eq!((lo[0], hi[0]), (-3.0, 3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMatrix {
    rows: usize,
    cols: usize,
    /// Row-major `max(w, 0)`.
    pos: Vec<f64>,
    /// Row-major `min(w, 0)`.
    neg: Vec<f64>,
    /// Transpose-packed `max(w, 0)`: entry `(j, i)` at `j·rows + i`.
    pos_t: Vec<f64>,
    /// Transpose-packed `min(w, 0)`.
    neg_t: Vec<f64>,
}

impl SplitMatrix {
    /// Splits `w` into positive and negative parts and packs both layouts.
    pub fn compile(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let data = w.as_slice();
        let mut pos = Vec::with_capacity(data.len());
        let mut neg = Vec::with_capacity(data.len());
        for &v in data {
            pos.push(v.max(0.0));
            neg.push(v.min(0.0));
        }
        let mut pos_t = vec![0.0; data.len()];
        let mut neg_t = vec![0.0; data.len()];
        for i in 0..rows {
            for j in 0..cols {
                pos_t[j * rows + i] = pos[i * cols + j];
                neg_t[j * rows + i] = neg[i * cols + j];
            }
        }
        Self { rows, cols, pos, neg, pos_t, neg_t }
    }

    /// Number of rows (output dimension of the affine map).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input dimension of the affine map).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fused interval affine map: writes the bounds of `W·[lo, hi] + bias`
    /// into `lo_out` / `hi_out` in one pass over the transpose-packed split
    /// weights.
    ///
    /// Bit-identical to accumulating `bias[i] + Σ_j w_ij·[lo_j, hi_j]` with
    /// sign-aware interval scaling in ascending `j` order (the historical
    /// box-domain transformer): per `j`, one of the two split products is an
    /// exact `0.0` and adding it is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if any slice length disagrees with the matrix shape.
    pub fn fused_interval_matvec(
        &self,
        lo: &[f64],
        hi: &[f64],
        bias: &[f64],
        lo_out: &mut [f64],
        hi_out: &mut [f64],
    ) {
        assert_eq!(lo.len(), self.cols, "lo length mismatch");
        assert_eq!(hi.len(), self.cols, "hi length mismatch");
        assert_eq!(bias.len(), self.rows, "bias length mismatch");
        assert_eq!(lo_out.len(), self.rows, "lo_out length mismatch");
        assert_eq!(hi_out.len(), self.rows, "hi_out length mismatch");
        lo_out.copy_from_slice(bias);
        hi_out.copy_from_slice(bias);
        for j in 0..self.cols {
            let (lj, hj) = (lo[j], hi[j]);
            let p = &self.pos_t[j * self.rows..(j + 1) * self.rows];
            let n = &self.neg_t[j * self.rows..(j + 1) * self.rows];
            // Broadcast input j across all outputs: independent accumulator
            // per output (vectorisable), ascending-j order per output.
            for i in 0..self.rows {
                lo_out[i] += p[i] * lj + n[i] * hj;
                hi_out[i] += p[i] * hj + n[i] * lj;
            }
        }
    }

    /// Fused interval matrix product: bounds of `W·[Lo, Hi]` where `Lo` and
    /// `Hi` are element-wise lower/upper coefficient matrices.
    ///
    /// This is how the symbolic domain pushes its whole coefficient matrix
    /// through a layer: row-axpy sweeps over the columns of the coefficient
    /// matrices instead of per-entry `get`/`set` loops. Accumulation order
    /// per output entry is ascending `j` (matching the historical scalar
    /// loop).
    ///
    /// # Panics
    ///
    /// Panics if `lo`/`hi` shapes disagree with each other or with
    /// `self.cols()` rows.
    pub fn fused_interval_matmul(&self, lo: &Matrix, hi: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(lo.shape(), hi.shape(), "lo/hi shape mismatch");
        assert_eq!(lo.rows(), self.cols, "inner dimension mismatch");
        let d = lo.cols();
        let mut lo_out = Matrix::zeros(self.rows, d);
        let mut hi_out = Matrix::zeros(self.rows, d);
        for i in 0..self.rows {
            let p = &self.pos[i * self.cols..(i + 1) * self.cols];
            let n = &self.neg[i * self.cols..(i + 1) * self.cols];
            for j in 0..self.cols {
                let (pj, nj) = (p[j], n[j]);
                if pj == 0.0 && nj == 0.0 {
                    continue;
                }
                let src_lo = lo.row(j);
                let src_hi = hi.row(j);
                let dst_lo = lo_out.row_mut(i);
                for (dst, (&l, &h)) in dst_lo.iter_mut().zip(src_lo.iter().zip(src_hi)) {
                    *dst += pj * l + nj * h;
                }
                let dst_hi = hi_out.row_mut(i);
                for (dst, (&l, &h)) in dst_hi.iter_mut().zip(src_lo.iter().zip(src_hi)) {
                    *dst += pj * h + nj * l;
                }
            }
        }
        (lo_out, hi_out)
    }
}

/// Packs the transpose of `w` (entry `(j, i)` of the result is `w[i][j]`)
/// using the non-allocating [`Matrix::col_iter`] column view.
///
/// Forward batching wants weight *columns* contiguous (see
/// [`batch_affine_packed`]); layers cache this packing next to their split
/// weights.
pub fn pack_transpose(w: &Matrix) -> Matrix {
    let mut data = Vec::with_capacity(w.rows() * w.cols());
    for j in 0..w.cols() {
        data.extend(w.col_iter(j));
    }
    Matrix::from_vec(w.cols(), w.rows(), data)
}

/// Matrix product `a · b` as slice-based row axpy sweeps.
///
/// Same `i-k-j` loop nest as the naive [`Matrix::matmul`] — so each output
/// entry reduces over `k` in ascending order and the result is
/// bit-identical on finite inputs — but the inner axpy runs on borrowed row
/// slices with no per-element bounds checks, which is what lets it
/// vectorise. Zero `a`-entries skip their whole sweep, mirroring the naive
/// loop's skip; note this only pays off for sparse *left* operands (the
/// zonotope path's left operand is a dense weight matrix — its win comes
/// from the vectorised sweeps, not the skip).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let (m, k) = (a.rows(), a.cols());
    let mut out = Matrix::zeros(m, b.cols());
    for i in 0..m {
        let arow = &a.as_slice()[i * k..(i + 1) * k];
        let orow = out.row_mut(i);
        // Four `a`-elements per sweep (see `batch_affine_packed` for the
        // traffic argument); per-element adds stay sequential in ascending
        // k, and all-zero `a` quads skip their sweep entirely.
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                kk += 4;
                continue;
            }
            let b0 = b.row(kk);
            let b1 = b.row(kk + 1);
            let b2 = b.row(kk + 2);
            let b3 = b.row(kk + 3);
            for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                let mut t = *o;
                t += a0 * v0;
                t += a1 * v1;
                t += a2 * v2;
                t += a3 * v3;
                *o = t;
            }
            kk += 4;
        }
        while kk < k {
            let av = arow[kk];
            if av != 0.0 {
                axpy(orow, av, b.row(kk));
            }
            kk += 1;
        }
    }
    out
}

/// Batched affine map `x · wtᵀ... + bias` against a **pre-packed transposed**
/// weight matrix `wt` (shape `in_dim × out_dim`, see [`pack_transpose`]):
/// row `p` of the result is `W·x_p + bias`.
///
/// Each output element accumulates over `k` in ascending order — the same
/// order as [`Matrix::matvec`] — while the inner loop sweeps a contiguous
/// `wt` row across all outputs of one point, so independent accumulators
/// vectorise. The bias lands after the sum, exactly like the historical
/// `pre_activation` (`matvec` then bias add), keeping batch rows
/// bit-identical to single forward passes.
///
/// # Panics
///
/// Panics if `x.cols() != wt.rows()` or `bias.len() != wt.cols()`.
pub fn batch_affine_packed(x: &Matrix, wt: &Matrix, bias: &[f64]) -> Matrix {
    assert_eq!(x.cols(), wt.rows(), "batch_affine_packed dimension mismatch");
    assert_eq!(bias.len(), wt.cols(), "bias length mismatch");
    let (npts, k, odim) = (x.rows(), x.cols(), wt.cols());
    let mut out = Matrix::zeros(npts, odim);
    for p in 0..npts {
        let xrow = &x.as_slice()[p * k..(p + 1) * k];
        let orow = out.row_mut(p);
        // Four input elements per sweep: the output row is loaded and
        // stored once per *four* weight rows instead of once per row. The
        // four adds into each output element stay sequential statements in
        // ascending-k order, so the per-element reduction order — and with
        // it bit-compatibility with `matvec` — is unchanged.
        let mut kk = 0;
        while kk + 4 <= k {
            let (x0, x1, x2, x3) = (xrow[kk], xrow[kk + 1], xrow[kk + 2], xrow[kk + 3]);
            let w0 = wt.row(kk);
            let w1 = wt.row(kk + 1);
            let w2 = wt.row(kk + 2);
            let w3 = wt.row(kk + 3);
            for ((((o, &a0), &a1), &a2), &a3) in orow.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3) {
                let mut t = *o;
                t += x0 * a0;
                t += x1 * a1;
                t += x2 * a2;
                t += x3 * a3;
                *o = t;
            }
            kk += 4;
        }
        while kk < k {
            axpy(orow, xrow[kk], wt.row(kk));
            kk += 1;
        }
        for (o, &b) in orow.iter_mut().zip(bias) {
            *o += b;
        }
    }
    out
}

/// Convenience wrapper around [`batch_affine_packed`] for callers holding
/// the weights in their natural `out_dim × in_dim` layout: packs the
/// transpose on the fly (one pass, amortised over the whole batch).
///
/// Hot layers should cache the packing instead — see
/// `covern_nn::DenseLayer::forward_batch`.
///
/// # Panics
///
/// Panics if `x.cols() != w.cols()` or `bias.len() != w.rows()`.
pub fn batch_affine_nt(x: &Matrix, w: &Matrix, bias: &[f64]) -> Matrix {
    batch_affine_packed(x, &pack_transpose(w), bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform(-2.0, 2.0))
    }

    #[test]
    fn split_parts_recompose_the_weights() {
        let mut rng = Rng::seeded(7);
        let w = random_matrix(&mut rng, 5, 9);
        let s = SplitMatrix::compile(&w);
        assert_eq!((s.rows(), s.cols()), (5, 9));
        for i in 0..5 {
            for j in 0..9 {
                let v = s.pos[i * 9 + j] + s.neg[i * 9 + j];
                assert_eq!(v, w.get(i, j));
                assert!(s.pos[i * 9 + j] >= 0.0 && s.neg[i * 9 + j] <= 0.0);
                assert_eq!(s.pos_t[j * 5 + i], s.pos[i * 9 + j]);
                assert_eq!(s.neg_t[j * 5 + i], s.neg[i * 9 + j]);
            }
        }
    }

    #[test]
    fn fused_matvec_matches_signed_scalar_loop() {
        let mut rng = Rng::seeded(11);
        let w = random_matrix(&mut rng, 6, 4);
        let s = SplitMatrix::compile(&w);
        let lo = [-1.0, 0.5, -2.0, 0.0];
        let hi = [1.0, 1.5, -1.0, 3.0];
        let bias = [0.1, -0.2, 0.0, 1.0, -1.0, 0.5];
        let mut lo_out = vec![0.0; 6];
        let mut hi_out = vec![0.0; 6];
        s.fused_interval_matvec(&lo, &hi, &bias, &mut lo_out, &mut hi_out);
        for i in 0..6 {
            // Naive reference: sign-aware accumulation in the same j order.
            let mut l = bias[i];
            let mut h = bias[i];
            for j in 0..4 {
                let wij = w.get(i, j);
                if wij >= 0.0 {
                    l += wij * lo[j];
                    h += wij * hi[j];
                } else {
                    l += wij * hi[j];
                    h += wij * lo[j];
                }
            }
            assert_eq!(lo_out[i], l, "lo row {i}");
            assert_eq!(hi_out[i], h, "hi row {i}");
            assert!(lo_out[i] <= hi_out[i]);
        }
    }

    #[test]
    fn fused_matvec_is_sound_for_interior_points() {
        let mut rng = Rng::seeded(13);
        let w = random_matrix(&mut rng, 8, 5);
        let s = SplitMatrix::compile(&w);
        let lo = vec![-1.0; 5];
        let hi = vec![2.0; 5];
        let bias = vec![0.25; 8];
        let mut lo_out = vec![0.0; 8];
        let mut hi_out = vec![0.0; 8];
        s.fused_interval_matvec(&lo, &hi, &bias, &mut lo_out, &mut hi_out);
        for _ in 0..100 {
            let x: Vec<f64> = (0..5).map(|_| rng.uniform(-1.0, 2.0)).collect();
            let y = w.matvec(&x);
            for i in 0..8 {
                let v = y[i] + bias[i];
                assert!(lo_out[i] - 1e-9 <= v && v <= hi_out[i] + 1e-9);
            }
        }
    }

    #[test]
    fn fused_matmul_reduces_to_matvec_on_single_column() {
        let mut rng = Rng::seeded(17);
        let w = random_matrix(&mut rng, 4, 6);
        let s = SplitMatrix::compile(&w);
        let lo_col: Vec<f64> = (0..6).map(|i| -1.0 - i as f64 * 0.1).collect();
        let hi_col: Vec<f64> = (0..6).map(|i| 1.0 + i as f64 * 0.2).collect();
        let lo_m = Matrix::from_vec(6, 1, lo_col.clone());
        let hi_m = Matrix::from_vec(6, 1, hi_col.clone());
        let (lo_out_m, hi_out_m) = s.fused_interval_matmul(&lo_m, &hi_m);
        let mut lo_out = vec![0.0; 4];
        let mut hi_out = vec![0.0; 4];
        s.fused_interval_matvec(&lo_col, &hi_col, &[0.0; 4], &mut lo_out, &mut hi_out);
        for i in 0..4 {
            assert!((lo_out_m.get(i, 0) - lo_out[i]).abs() < 1e-12);
            assert!((hi_out_m.get(i, 0) - hi_out[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn pack_transpose_matches_transpose() {
        let mut rng = Rng::seeded(31);
        let w = random_matrix(&mut rng, 3, 7);
        assert_eq!(pack_transpose(&w), w.transpose());
    }

    #[test]
    fn axpy_matmul_is_bit_identical_to_naive() {
        let mut rng = Rng::seeded(19);
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 9, 2), (8, 8, 8), (13, 5, 11)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            assert_eq!(matmul(&a, &b), a.matmul(&b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn batch_affine_rows_are_bit_identical_to_matvec() {
        let mut rng = Rng::seeded(23);
        let w = random_matrix(&mut rng, 7, 5);
        let bias: Vec<f64> = (0..7).map(|i| i as f64 * 0.3 - 1.0).collect();
        let x = random_matrix(&mut rng, 10, 5);
        let y = batch_affine_nt(&x, &w, &bias);
        let y_packed = batch_affine_packed(&x, &pack_transpose(&w), &bias);
        assert_eq!(y, y_packed);
        for p in 0..10 {
            let mut single = w.matvec(x.row(p));
            for (v, b) in single.iter_mut().zip(bias.iter()) {
                *v += b;
            }
            assert_eq!(y.row(p), single.as_slice(), "row {p}");
        }
    }

    #[test]
    fn kernels_are_deterministic_across_calls() {
        let mut rng = Rng::seeded(29);
        let a = random_matrix(&mut rng, 9, 6);
        let b = random_matrix(&mut rng, 6, 9);
        assert_eq!(matmul(&a, &b), matmul(&a, &b));
        let s = SplitMatrix::compile(&a);
        let lo = vec![-0.5; 6];
        let hi = vec![0.5; 6];
        let bias = vec![0.0; 9];
        let mut l1 = vec![0.0; 9];
        let mut h1 = vec![0.0; 9];
        let mut l2 = vec![0.0; 9];
        let mut h2 = vec![0.0; 9];
        s.fused_interval_matvec(&lo, &hi, &bias, &mut l1, &mut h1);
        s.fused_interval_matvec(&lo, &hi, &bias, &mut l2, &mut h2);
        assert_eq!(l1, l2);
        assert_eq!(h1, h2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
