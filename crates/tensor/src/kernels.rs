//! Batched, transpose-packed linear-algebra kernels for the reachability
//! hot paths.
//!
//! Every verification path in the workspace — interval / symbolic / zonotope
//! layer transformers, branch-and-bound concrete probes, Lipschitz sampling,
//! campaign replay — bottoms out in dense affine maps. This module provides
//! the shared kernels those paths run on:
//!
//! * [`SplitMatrix`] — a weight matrix pre-split into its positive and
//!   negative parts (both row-major and transpose-packed), the basis of the
//!   **fused interval matvec/matmul** that propagates lower and upper bounds
//!   in a single pass with no per-element sign branches;
//! * [`matmul`] — slice-based axpy matrix product (the zonotope generator
//!   propagation primitive);
//! * [`batch_affine_packed`] / [`batch_affine_nt`] — the batched forward
//!   primitive `X·Wᵀ + b` that turns N-point network evaluation into one
//!   matrix product per layer.
//!
//! # Two kernel families: Deterministic and Outward
//!
//! The module exports two contracts, selected per process via
//! [`KernelMode`]:
//!
//! * **Deterministic** (the default) — every kernel accumulates each output
//!   element along a **fixed, sequential reduction order** (ascending inner
//!   index), independent of batch position and thread count. Two
//!   consequences, both load bearing for the continuous-verification
//!   pipeline:
//!
//!   1. repeated calls — on any machine, at any thread count — produce
//!      byte-identical results, so the branch-and-bound engine's
//!      schedule-independent-verdict guarantee survives the kernel rewiring;
//!   2. the results are bit-identical to the naive one-vector-at-a-time
//!      loops they replace ([`Matrix::matvec`], [`Matrix::matmul`], the
//!      historical interval transformer), because those used the same
//!      reduction order. `tests/kernel_equivalence.rs` locks this in.
//!
//!   The speed does **not** come from reassociating sums (which would change
//!   results): it comes from the *axpy formulation*. Instead of computing
//!   each output as an isolated dot product — a serial chain of dependent
//!   adds that cannot use SIMD — the kernels broadcast one input element
//!   across a contiguous row of outputs, so the compiler vectorises across
//!   *independent* accumulators while each accumulator still sees its terms
//!   in ascending order. The transpose packing is what makes those output
//!   rows contiguous.
//!
//! * **Outward** (sound-with-slack) — the fast path for probe batches,
//!   Lipschitz sampling, and any propagation whose result only needs to
//!   *contain* the truth, not reproduce historical bits. These kernels are
//!   free to reassociate: hand-unrolled 4-wide multi-accumulator lanes
//!   ([`SplitMatrix::fused_interval_matvec_outward`] runs Rump
//!   midpoint–radius form at half the flops of the split form),
//!   cache-blocked matrix products ([`matmul_blocked`],
//!   [`batch_affine_outward`] reuse each streamed row across several
//!   outputs). Soundness is restored *a posteriori*: every interval result
//!   is widened outward by a per-operation rounding-error bound
//!   proportional to the reduction depth (see [`outward_err_scale`]),
//!   finished with [`f64::next_down`]/[`f64::next_up`], so **any**
//!   summation order is sound and the Outward interval provably contains
//!   both the exact real result and the Deterministic family's result
//!   (`tests/kernel_rounding.rs` property-tests this containment).
//!   Canonical reports, proof reuse, and the cluster differential suites
//!   pin Deterministic; Outward never feeds a byte-compared artifact.
//!
//! # Numeric domain
//!
//! Kernels assume **finite** inputs. A `0.0 · ∞` product (possible when a
//! zero weight meets an unbounded interval) yields NaN — exactly as in the
//! naive paths they replace, which multiplied every weight against every
//! bound as well. Target boxes may be unbounded; propagated states are not.

use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family the reachability hot paths run on.
///
/// Selected once per process via [`set_kernel_mode`] (the CLI's
/// `--kernel-mode` flag); consumers read it through [`kernel_mode`] at each
/// dispatch point. The default is [`KernelMode::Deterministic`], which every
/// byte-identity guarantee in the workspace is pinned against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Fixed-lane-order kernels: bit-identical across calls, machines, and
    /// thread counts, and bit-compatible with the historical naive loops.
    Deterministic,
    /// Reassociated, cache-blocked kernels whose interval results are
    /// widened outward by a rounding-error bound — sound under any
    /// summation order, not byte-stable across kernel revisions.
    Outward,
}

/// Process-global kernel mode; `0 = Deterministic`, `1 = Outward`.
static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the process-global kernel family.
///
/// Takes effect for every subsequent kernel dispatch in the process
/// (abstract transformers, batched forward passes). Verdict streams stay
/// schedule-independent in either mode; only Deterministic additionally
/// guarantees byte-identity with historical reports.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The process-global kernel family selected by [`set_kernel_mode`].
pub fn kernel_mode() -> KernelMode {
    if KERNEL_MODE.load(Ordering::Relaxed) == 0 {
        KernelMode::Deterministic
    } else {
        KernelMode::Outward
    }
}

/// Scale of the outward rounding compensation for a reduction of `terms`
/// summands: `8·(terms + 4)·ε`.
///
/// Standard floating-point summation analysis bounds the error of *any*
/// summation order of `n` terms by `γ_n · Σ|termᵢ|` with
/// `γ_n ≈ n·ε`. The Outward kernels widen by `outward_err_scale(n) · magsum`
/// where `magsum` upper-bounds the sum of term magnitudes — the `8·(n+4)`
/// factor leaves a ≥ 4× margin over the *combined* error of the Outward
/// computation and the Deterministic computation it must contain, plus the
/// midpoint/radius conversion round-off, so containment of both the real
/// result and the Deterministic result holds with room to spare.
pub fn outward_err_scale(terms: usize) -> f64 {
    8.0 * (terms as f64 + 4.0) * f64::EPSILON
}

/// Adds `a · src` into `dst` element-wise. The vectorisable inner step all
/// kernels are built from; each `dst` element receives exactly one add per
/// call, so reduction order per element is the caller's loop order.
#[inline(always)]
fn axpy(dst: &mut [f64], a: f64, src: &[f64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += a * s;
    }
}

/// A weight matrix split once into its positive part `max(w, 0)` and
/// negative part `min(w, 0)`, stored both row-major (for coefficient-matrix
/// sweeps) and transpose-packed (for the vectorised interval matvec).
///
/// The split is what makes interval propagation branch-free: with
/// `pos + neg = w` and the parts sign-disjoint,
///
/// ```text
/// lo_out = pos·lo + neg·hi        hi_out = pos·hi + neg·lo
/// ```
///
/// are sound and exact for the affine map, and each output accumulates in
/// plain ascending-index order. Layers cache their split via
/// `covern_nn::DenseLayer::split_weights`, so the split cost is paid once
/// per layer *per network*, not once per propagated box — the difference
/// between O(layers) and O(layers × boxes) splits in branch-and-bound.
///
/// # Example
///
/// ```
/// use covern_tensor::{kernels::SplitMatrix, Matrix};
///
/// let w = Matrix::from_rows(&[&[1.0, -2.0]]);
/// let s = SplitMatrix::compile(&w);
/// let (mut lo, mut hi) = (vec![0.0], vec![0.0]);
/// s.fused_interval_matvec(&[-1.0, -1.0], &[1.0, 1.0], &[0.0], &mut lo, &mut hi);
/// assert_eq!((lo[0], hi[0]), (-3.0, 3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMatrix {
    rows: usize,
    cols: usize,
    /// Row-major `max(w, 0)`.
    pos: Vec<f64>,
    /// Row-major `min(w, 0)`.
    neg: Vec<f64>,
    /// Transpose-packed `max(w, 0)`: entry `(j, i)` at `j·rows + i`.
    pos_t: Vec<f64>,
    /// Transpose-packed `min(w, 0)`.
    neg_t: Vec<f64>,
    /// Transpose-packed original weights `w` (for the Outward
    /// midpoint–radius matvec).
    w_t: Vec<f64>,
    /// Transpose-packed absolute weights `|w|`.
    abs_t: Vec<f64>,
    /// Per-row `Σ_j |w_ij|` — the magnitude budget the Outward kernels
    /// scale their rounding compensation by.
    rowabs: Vec<f64>,
}

impl SplitMatrix {
    /// Splits `w` into positive and negative parts and packs both layouts.
    pub fn compile(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let data = w.as_slice();
        let mut pos = Vec::with_capacity(data.len());
        let mut neg = Vec::with_capacity(data.len());
        for &v in data {
            pos.push(v.max(0.0));
            neg.push(v.min(0.0));
        }
        let mut pos_t = vec![0.0; data.len()];
        let mut neg_t = vec![0.0; data.len()];
        let mut w_t = vec![0.0; data.len()];
        let mut abs_t = vec![0.0; data.len()];
        let mut rowabs = vec![0.0; rows];
        for i in 0..rows {
            for j in 0..cols {
                let p = pos[i * cols + j];
                let n = neg[i * cols + j];
                pos_t[j * rows + i] = p;
                neg_t[j * rows + i] = n;
                w_t[j * rows + i] = p + n;
                abs_t[j * rows + i] = p - n;
                rowabs[i] += p - n;
            }
        }
        Self { rows, cols, pos, neg, pos_t, neg_t, w_t, abs_t, rowabs }
    }

    /// Number of rows (output dimension of the affine map).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input dimension of the affine map).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Fused interval affine map: writes the bounds of `W·[lo, hi] + bias`
    /// into `lo_out` / `hi_out` in one pass over the transpose-packed split
    /// weights.
    ///
    /// Bit-identical to accumulating `bias[i] + Σ_j w_ij·[lo_j, hi_j]` with
    /// sign-aware interval scaling in ascending `j` order (the historical
    /// box-domain transformer): per `j`, one of the two split products is an
    /// exact `0.0` and adding it is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if any slice length disagrees with the matrix shape.
    pub fn fused_interval_matvec(
        &self,
        lo: &[f64],
        hi: &[f64],
        bias: &[f64],
        lo_out: &mut [f64],
        hi_out: &mut [f64],
    ) {
        assert_eq!(lo.len(), self.cols, "lo length mismatch");
        assert_eq!(hi.len(), self.cols, "hi length mismatch");
        assert_eq!(bias.len(), self.rows, "bias length mismatch");
        assert_eq!(lo_out.len(), self.rows, "lo_out length mismatch");
        assert_eq!(hi_out.len(), self.rows, "hi_out length mismatch");
        lo_out.copy_from_slice(bias);
        hi_out.copy_from_slice(bias);
        for j in 0..self.cols {
            let (lj, hj) = (lo[j], hi[j]);
            let p = &self.pos_t[j * self.rows..(j + 1) * self.rows];
            let n = &self.neg_t[j * self.rows..(j + 1) * self.rows];
            // Broadcast input j across all outputs: independent accumulator
            // per output (vectorisable), ascending-j order per output.
            for i in 0..self.rows {
                lo_out[i] += p[i] * lj + n[i] * hj;
                hi_out[i] += p[i] * hj + n[i] * lj;
            }
        }
    }

    /// Fused interval matrix product: bounds of `W·[Lo, Hi]` where `Lo` and
    /// `Hi` are element-wise lower/upper coefficient matrices.
    ///
    /// This is how the symbolic domain pushes its whole coefficient matrix
    /// through a layer: row-axpy sweeps over the columns of the coefficient
    /// matrices instead of per-entry `get`/`set` loops. Accumulation order
    /// per output entry is ascending `j` (matching the historical scalar
    /// loop).
    ///
    /// # Panics
    ///
    /// Panics if `lo`/`hi` shapes disagree with each other or with
    /// `self.cols()` rows.
    pub fn fused_interval_matmul(&self, lo: &Matrix, hi: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(lo.shape(), hi.shape(), "lo/hi shape mismatch");
        assert_eq!(lo.rows(), self.cols, "inner dimension mismatch");
        let d = lo.cols();
        let mut lo_out = Matrix::zeros(self.rows, d);
        let mut hi_out = Matrix::zeros(self.rows, d);
        for i in 0..self.rows {
            let p = &self.pos[i * self.cols..(i + 1) * self.cols];
            let n = &self.neg[i * self.cols..(i + 1) * self.cols];
            for j in 0..self.cols {
                let (pj, nj) = (p[j], n[j]);
                if pj == 0.0 && nj == 0.0 {
                    continue;
                }
                let src_lo = lo.row(j);
                let src_hi = hi.row(j);
                let dst_lo = lo_out.row_mut(i);
                for (dst, (&l, &h)) in dst_lo.iter_mut().zip(src_lo.iter().zip(src_hi)) {
                    *dst += pj * l + nj * h;
                }
                let dst_hi = hi_out.row_mut(i);
                for (dst, (&l, &h)) in dst_hi.iter_mut().zip(src_lo.iter().zip(src_hi)) {
                    *dst += pj * h + nj * l;
                }
            }
        }
        (lo_out, hi_out)
    }

    /// Outward-family interval affine map: a sound enclosure of
    /// `W·[lo, hi] + bias` computed in Rump midpoint–radius form and widened
    /// by a rounding-error bound.
    ///
    /// Per column the kernel runs `yc += w·c` and `yr += |w|·r` with
    /// `c = (lo+hi)/2`, `r = (hi−lo)/2` — **half the flops** of the
    /// sign-split form (2 mul + 2 add per entry instead of 4 + 4) — in
    /// hand-unrolled 4-wide column lanes that are free to reassociate. The
    /// result `[yc − yr, yc + yr]` is then dilated by
    /// [`outward_err_scale`]`(cols) · (rowabs_i·M + |bias_i|)` (where `M`
    /// bounds the input magnitudes) and finished with
    /// [`f64::next_down`]/[`f64::next_up`], which makes it a superset of
    /// the exact real interval *and* of [`Self::fused_interval_matvec`]'s
    /// result under any summation order.
    ///
    /// # Panics
    ///
    /// Panics if any slice length disagrees with the matrix shape.
    pub fn fused_interval_matvec_outward(
        &self,
        lo: &[f64],
        hi: &[f64],
        bias: &[f64],
        lo_out: &mut [f64],
        hi_out: &mut [f64],
    ) {
        assert_eq!(lo.len(), self.cols, "lo length mismatch");
        assert_eq!(hi.len(), self.cols, "hi length mismatch");
        assert_eq!(bias.len(), self.rows, "bias length mismatch");
        assert_eq!(lo_out.len(), self.rows, "lo_out length mismatch");
        assert_eq!(hi_out.len(), self.rows, "hi_out length mismatch");
        let rows = self.rows;
        // lo_out accumulates the midpoint image yc (seeded with the exact
        // bias), hi_out the radius image yr.
        lo_out.copy_from_slice(bias);
        hi_out.fill(0.0);
        let mut mmax = 0.0f64;
        let mut j = 0;
        while j + 4 <= self.cols {
            let (c0, r0) = (0.5 * (lo[j] + hi[j]), 0.5 * (hi[j] - lo[j]));
            let (c1, r1) = (0.5 * (lo[j + 1] + hi[j + 1]), 0.5 * (hi[j + 1] - lo[j + 1]));
            let (c2, r2) = (0.5 * (lo[j + 2] + hi[j + 2]), 0.5 * (hi[j + 2] - lo[j + 2]));
            let (c3, r3) = (0.5 * (lo[j + 3] + hi[j + 3]), 0.5 * (hi[j + 3] - lo[j + 3]));
            mmax = mmax.max(c0.abs() + r0).max(c1.abs() + r1).max(c2.abs() + r2).max(c3.abs() + r3);
            let w0 = &self.w_t[j * rows..(j + 1) * rows];
            let w1 = &self.w_t[(j + 1) * rows..(j + 2) * rows];
            let w2 = &self.w_t[(j + 2) * rows..(j + 3) * rows];
            let w3 = &self.w_t[(j + 3) * rows..(j + 4) * rows];
            let a0 = &self.abs_t[j * rows..(j + 1) * rows];
            let a1 = &self.abs_t[(j + 1) * rows..(j + 2) * rows];
            let a2 = &self.abs_t[(j + 2) * rows..(j + 3) * rows];
            let a3 = &self.abs_t[(j + 3) * rows..(j + 4) * rows];
            // Four columns per sweep: each accumulator is loaded and stored
            // once per four inputs, and the single-expression adds let the
            // compiler fuse/reassociate freely — the widening below absorbs
            // whatever order it picks.
            for i in 0..rows {
                lo_out[i] += w0[i] * c0 + w1[i] * c1 + w2[i] * c2 + w3[i] * c3;
                hi_out[i] += a0[i] * r0 + a1[i] * r1 + a2[i] * r2 + a3[i] * r3;
            }
            j += 4;
        }
        while j < self.cols {
            let (c, r) = (0.5 * (lo[j] + hi[j]), 0.5 * (hi[j] - lo[j]));
            mmax = mmax.max(c.abs() + r);
            let w = &self.w_t[j * rows..(j + 1) * rows];
            let a = &self.abs_t[j * rows..(j + 1) * rows];
            for i in 0..rows {
                lo_out[i] += w[i] * c;
                hi_out[i] += a[i] * r;
            }
            j += 1;
        }
        let scale = outward_err_scale(self.cols);
        for i in 0..rows {
            let err = scale * (self.rowabs[i] * mmax + bias[i].abs());
            let (yc, yr) = (lo_out[i], hi_out[i]);
            lo_out[i] = (yc - yr - err).next_down();
            hi_out[i] = (yc + yr + err).next_up();
        }
    }

    /// Outward-family fused interval matrix product, plus the per-output-row
    /// constant slack that makes its reassociated coefficients sound.
    ///
    /// Same contract as [`Self::fused_interval_matmul`], but the row sweeps
    /// are blocked two output rows at a time (each source row streams once
    /// per *two* outputs) and may reassociate. Because the result columns
    /// are **coefficients of affine functions**, widening the entries
    /// themselves would be unsound (a larger coefficient is not a looser
    /// bound when the input is negative); instead the kernel returns a
    /// per-output-row slack computed against `xmax` — the per-input-
    /// dimension magnitude bound `max(|x_d|)` of the box the coefficients
    /// will be evaluated over — which the caller folds into its constant
    /// terms (`lo_const − slack`, `hi_const + slack`). The slack bounds the
    /// value error of *any* summation order (including the Deterministic
    /// family's), so the shifted affine bounds stay sound.
    ///
    /// # Panics
    ///
    /// Panics if `lo`/`hi` shapes disagree with each other or with
    /// `self.cols()` rows, or if `xmax.len() != lo.cols()`.
    pub fn fused_interval_matmul_outward(
        &self,
        lo: &Matrix,
        hi: &Matrix,
        xmax: &[f64],
    ) -> (Matrix, Matrix, Vec<f64>) {
        assert_eq!(lo.shape(), hi.shape(), "lo/hi shape mismatch");
        assert_eq!(lo.rows(), self.cols, "inner dimension mismatch");
        assert_eq!(xmax.len(), lo.cols(), "xmax length mismatch");
        let d = lo.cols();
        let mut lo_out = Matrix::zeros(self.rows, d);
        let mut hi_out = Matrix::zeros(self.rows, d);
        // Per-column magnitude bound over both coefficient matrices: the
        // rounding magnitude budget of one output entry in column `k` is
        // `rowabs_i · cmax_k`.
        let mut cmax = vec![0.0f64; d];
        for (l, h) in lo.as_slice().chunks_exact(d).zip(hi.as_slice().chunks_exact(d)) {
            for (m, (&lv, &hv)) in cmax.iter_mut().zip(l.iter().zip(h)) {
                *m = m.max(lv.abs()).max(hv.abs());
            }
        }
        // Two output rows per sweep: the source coefficient rows stream
        // once per pair instead of once per row.
        let mut i = 0;
        while i + 2 <= self.rows {
            let (lo0, lo1) = split_two_rows(&mut lo_out, i, d);
            let (hi0, hi1) = split_two_rows(&mut hi_out, i, d);
            let p0 = &self.pos[i * self.cols..(i + 1) * self.cols];
            let n0 = &self.neg[i * self.cols..(i + 1) * self.cols];
            let p1 = &self.pos[(i + 1) * self.cols..(i + 2) * self.cols];
            let n1 = &self.neg[(i + 1) * self.cols..(i + 2) * self.cols];
            for j in 0..self.cols {
                let (p0j, n0j, p1j, n1j) = (p0[j], n0[j], p1[j], n1[j]);
                if p0j == 0.0 && n0j == 0.0 && p1j == 0.0 && n1j == 0.0 {
                    continue;
                }
                let src_lo = lo.row(j);
                let src_hi = hi.row(j);
                for ((((dl0, dh0), dl1), dh1), (&l, &h)) in lo0
                    .iter_mut()
                    .zip(hi0.iter_mut())
                    .zip(lo1.iter_mut())
                    .zip(hi1.iter_mut())
                    .zip(src_lo.iter().zip(src_hi))
                {
                    *dl0 += p0j * l + n0j * h;
                    *dh0 += p0j * h + n0j * l;
                    *dl1 += p1j * l + n1j * h;
                    *dh1 += p1j * h + n1j * l;
                }
            }
            i += 2;
        }
        if i < self.rows {
            let p = &self.pos[i * self.cols..(i + 1) * self.cols];
            let n = &self.neg[i * self.cols..(i + 1) * self.cols];
            for j in 0..self.cols {
                let (pj, nj) = (p[j], n[j]);
                if pj == 0.0 && nj == 0.0 {
                    continue;
                }
                let src_lo = lo.row(j);
                let src_hi = hi.row(j);
                for ((dl, dh), (&l, &h)) in lo_out
                    .row_mut(i)
                    .iter_mut()
                    .zip(hi_out.row_mut(i).iter_mut())
                    .zip(src_lo.iter().zip(src_hi))
                {
                    *dl += pj * l + nj * h;
                    *dh += pj * h + nj * l;
                }
            }
        }
        // Value-error slack of any summation order, evaluated against the
        // input box: Σ_k err_entry(i,k)·xmax_k ≤ scale·rowabs_i·Σ_k cmax_k·xmax_k.
        let s: f64 = cmax.iter().zip(xmax).map(|(&c, &x)| c * x).sum();
        let scale = outward_err_scale(self.cols);
        let slack = self.rowabs.iter().map(|&ra| (scale * ra * s).next_up()).collect();
        (lo_out, hi_out, slack)
    }
}

/// Borrows rows `i` and `i+1` of `m` (each `width` wide) as disjoint
/// mutable slices.
fn split_two_rows(m: &mut Matrix, i: usize, width: usize) -> (&mut [f64], &mut [f64]) {
    let (a, b) = m.as_mut_slice()[i * width..(i + 2) * width].split_at_mut(width);
    (a, b)
}

/// Packs the transpose of `w` (entry `(j, i)` of the result is `w[i][j]`)
/// using the non-allocating [`Matrix::col_iter`] column view.
///
/// Forward batching wants weight *columns* contiguous (see
/// [`batch_affine_packed`]); layers cache this packing next to their split
/// weights.
pub fn pack_transpose(w: &Matrix) -> Matrix {
    let mut data = Vec::with_capacity(w.rows() * w.cols());
    for j in 0..w.cols() {
        data.extend(w.col_iter(j));
    }
    Matrix::from_vec(w.cols(), w.rows(), data)
}

/// Matrix product `a · b` as slice-based row axpy sweeps.
///
/// Same `i-k-j` loop nest as the naive [`Matrix::matmul`] — so each output
/// entry reduces over `k` in ascending order and the result is
/// bit-identical on finite inputs — but the inner axpy runs on borrowed row
/// slices with no per-element bounds checks, which is what lets it
/// vectorise. Zero `a`-entries skip their whole sweep, mirroring the naive
/// loop's skip; note this only pays off for sparse *left* operands (the
/// zonotope path's left operand is a dense weight matrix — its win comes
/// from the vectorised sweeps, not the skip).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let (m, k) = (a.rows(), a.cols());
    let mut out = Matrix::zeros(m, b.cols());
    for i in 0..m {
        let arow = &a.as_slice()[i * k..(i + 1) * k];
        let orow = out.row_mut(i);
        // Four `a`-elements per sweep (see `batch_affine_packed` for the
        // traffic argument); per-element adds stay sequential in ascending
        // k, and all-zero `a` quads skip their sweep entirely.
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                kk += 4;
                continue;
            }
            let b0 = b.row(kk);
            let b1 = b.row(kk + 1);
            let b2 = b.row(kk + 2);
            let b3 = b.row(kk + 3);
            for ((((o, &v0), &v1), &v2), &v3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                let mut t = *o;
                t += a0 * v0;
                t += a1 * v1;
                t += a2 * v2;
                t += a3 * v3;
                *o = t;
            }
            kk += 4;
        }
        while kk < k {
            let av = arow[kk];
            if av != 0.0 {
                axpy(orow, av, b.row(kk));
            }
            kk += 1;
        }
    }
    out
}

/// Outward-family matrix product `a · b`: cache-blocked `4×4` tiles —
/// four output rows share four streamed `b` rows — free to reassociate.
///
/// Each inner sweep retires sixteen multiply-adds against eight loads and
/// four stores, versus the Deterministic [`matmul`]'s four multiply-adds
/// per five loads and one store: the tile amortises the read-modify-write
/// of the output rows across four `b` rows, and each output element is a
/// four-term independent sum the compiler can evaluate as an FMA tree. On
/// the zonotope generator shapes (`64×64` weights against `64×192`
/// generators) `b` traffic also drops 4×. Entry values differ from
/// [`matmul`] only by summation-order round-off (the standard
/// `γ_n·Σ|terms|` bound); callers on the Outward path absorb that under
/// the same slack conventions that already cover the Deterministic
/// product's own round-off (`covern-absint`'s recorded abstractions are
/// dilated outward — see its crate docs).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    let mut i = 0;
    while i + 4 <= m {
        let a0 = &a.as_slice()[i * k..(i + 1) * k];
        let a1 = &a.as_slice()[(i + 1) * k..(i + 2) * k];
        let a2 = &a.as_slice()[(i + 2) * k..(i + 3) * k];
        let a3 = &a.as_slice()[(i + 3) * k..(i + 4) * k];
        let block = &mut out.as_mut_slice()[i * n..(i + 4) * n];
        let (o0, rest) = block.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut kk = 0;
        while kk + 4 <= k {
            let (b0, b1, b2, b3) = (b.row(kk), b.row(kk + 1), b.row(kk + 2), b.row(kk + 3));
            let (a00, a01, a02, a03) = (a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]);
            let (a10, a11, a12, a13) = (a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]);
            let (a20, a21, a22, a23) = (a2[kk], a2[kk + 1], a2[kk + 2], a2[kk + 3]);
            let (a30, a31, a32, a33) = (a3[kk], a3[kk + 1], a3[kk + 2], a3[kk + 3]);
            for (((((((&v0, &v1), &v2), &v3), e0), e1), e2), e3) in b0
                .iter()
                .zip(b1)
                .zip(b2)
                .zip(b3)
                .zip(o0.iter_mut())
                .zip(o1.iter_mut())
                .zip(o2.iter_mut())
                .zip(o3.iter_mut())
            {
                *e0 += a00 * v0 + a01 * v1 + a02 * v2 + a03 * v3;
                *e1 += a10 * v0 + a11 * v1 + a12 * v2 + a13 * v3;
                *e2 += a20 * v0 + a21 * v1 + a22 * v2 + a23 * v3;
                *e3 += a30 * v0 + a31 * v1 + a32 * v2 + a33 * v3;
            }
            kk += 4;
        }
        while kk < k {
            let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            let brow = b.row(kk);
            for ((((&bv, e0), e1), e2), e3) in brow
                .iter()
                .zip(o0.iter_mut())
                .zip(o1.iter_mut())
                .zip(o2.iter_mut())
                .zip(o3.iter_mut())
            {
                *e0 += v0 * bv;
                *e1 += v1 * bv;
                *e2 += v2 * bv;
                *e3 += v3 * bv;
            }
            kk += 1;
        }
        i += 4;
    }
    while i < m {
        let arow = &a.as_slice()[i * k..(i + 1) * k];
        let orow = out.row_mut(i);
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                axpy(orow, av, b.row(kk));
            }
        }
        i += 1;
    }
    out
}

/// Batched affine map `x · wtᵀ... + bias` against a **pre-packed transposed**
/// weight matrix `wt` (shape `in_dim × out_dim`, see [`pack_transpose`]):
/// row `p` of the result is `W·x_p + bias`.
///
/// Each output element accumulates over `k` in ascending order — the same
/// order as [`Matrix::matvec`] — while the inner loop sweeps a contiguous
/// `wt` row across all outputs of one point, so independent accumulators
/// vectorise. The bias lands after the sum, exactly like the historical
/// `pre_activation` (`matvec` then bias add), keeping batch rows
/// bit-identical to single forward passes.
///
/// # Panics
///
/// Panics if `x.cols() != wt.rows()` or `bias.len() != wt.cols()`.
pub fn batch_affine_packed(x: &Matrix, wt: &Matrix, bias: &[f64]) -> Matrix {
    assert_eq!(x.cols(), wt.rows(), "batch_affine_packed dimension mismatch");
    assert_eq!(bias.len(), wt.cols(), "bias length mismatch");
    let (npts, k, odim) = (x.rows(), x.cols(), wt.cols());
    let mut out = Matrix::zeros(npts, odim);
    for p in 0..npts {
        let xrow = &x.as_slice()[p * k..(p + 1) * k];
        let orow = out.row_mut(p);
        // Four input elements per sweep: the output row is loaded and
        // stored once per *four* weight rows instead of once per row. The
        // four adds into each output element stay sequential statements in
        // ascending-k order, so the per-element reduction order — and with
        // it bit-compatibility with `matvec` — is unchanged.
        let mut kk = 0;
        while kk + 4 <= k {
            let (x0, x1, x2, x3) = (xrow[kk], xrow[kk + 1], xrow[kk + 2], xrow[kk + 3]);
            let w0 = wt.row(kk);
            let w1 = wt.row(kk + 1);
            let w2 = wt.row(kk + 2);
            let w3 = wt.row(kk + 3);
            for ((((o, &a0), &a1), &a2), &a3) in orow.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3) {
                let mut t = *o;
                t += x0 * a0;
                t += x1 * a1;
                t += x2 * a2;
                t += x3 * a3;
                *o = t;
            }
            kk += 4;
        }
        while kk < k {
            axpy(orow, xrow[kk], wt.row(kk));
            kk += 1;
        }
        for (o, &b) in orow.iter_mut().zip(bias) {
            *o += b;
        }
    }
    out
}

/// Convenience wrapper around [`batch_affine_packed`] for callers holding
/// the weights in their natural `out_dim × in_dim` layout: packs the
/// transpose on the fly (one pass, amortised over the whole batch).
///
/// Hot layers should cache the packing instead — see
/// `covern_nn::DenseLayer::forward_batch`.
///
/// # Panics
///
/// Panics if `x.cols() != w.cols()` or `bias.len() != w.rows()`.
pub fn batch_affine_nt(x: &Matrix, w: &Matrix, bias: &[f64]) -> Matrix {
    batch_affine_packed(x, &pack_transpose(w), bias)
}

/// Outward-family batched affine map: same contract and shapes as
/// [`batch_affine_packed`], blocked two points at a time and free to
/// reassociate.
///
/// Each `wt` row streams once per *two* batch points, and the four adds of
/// a quad sit in one expression so the compiler can build FMA trees instead
/// of the Deterministic family's serial add chain. Results are concrete
/// point evaluations (no widening): each row differs from
/// [`batch_affine_packed`]'s by summation-order round-off only, which the
/// probe/sampling consumers tolerate — a probe hit is always re-checked
/// against the abstract domain, and sampled Lipschitz bounds are heuristic
/// lower bounds by construction. Row `p` depends only on point `p` and its
/// batch parity, never on neighbouring values, so identical batches give
/// identical results at any thread count.
///
/// # Panics
///
/// Panics if `x.cols() != wt.rows()` or `bias.len() != wt.cols()`.
pub fn batch_affine_outward(x: &Matrix, wt: &Matrix, bias: &[f64]) -> Matrix {
    assert_eq!(x.cols(), wt.rows(), "batch_affine_outward dimension mismatch");
    assert_eq!(bias.len(), wt.cols(), "bias length mismatch");
    let (npts, k, odim) = (x.rows(), x.cols(), wt.cols());
    let mut out = Matrix::zeros(npts, odim);
    let mut p = 0;
    while p + 2 <= npts {
        let x0 = &x.as_slice()[p * k..(p + 1) * k];
        let x1 = &x.as_slice()[(p + 1) * k..(p + 2) * k];
        let block = &mut out.as_mut_slice()[p * odim..(p + 2) * odim];
        let (o0, o1) = block.split_at_mut(odim);
        let mut kk = 0;
        while kk + 4 <= k {
            let (u0, u1, u2, u3) = (x0[kk], x0[kk + 1], x0[kk + 2], x0[kk + 3]);
            let (v0, v1, v2, v3) = (x1[kk], x1[kk + 1], x1[kk + 2], x1[kk + 3]);
            let w0 = wt.row(kk);
            let w1 = wt.row(kk + 1);
            let w2 = wt.row(kk + 2);
            let w3 = wt.row(kk + 3);
            for (((((e0, e1), &a0), &a1), &a2), &a3) in
                o0.iter_mut().zip(o1.iter_mut()).zip(w0).zip(w1).zip(w2).zip(w3)
            {
                *e0 += u0 * a0 + u1 * a1 + u2 * a2 + u3 * a3;
                *e1 += v0 * a0 + v1 * a1 + v2 * a2 + v3 * a3;
            }
            kk += 4;
        }
        while kk < k {
            let (u, v) = (x0[kk], x1[kk]);
            for ((e0, e1), &a) in o0.iter_mut().zip(o1.iter_mut()).zip(wt.row(kk)) {
                *e0 += u * a;
                *e1 += v * a;
            }
            kk += 1;
        }
        for ((e0, e1), &b) in o0.iter_mut().zip(o1.iter_mut()).zip(bias) {
            *e0 += b;
            *e1 += b;
        }
        p += 2;
    }
    if p < npts {
        let xrow = &x.as_slice()[p * k..(p + 1) * k];
        let orow = out.row_mut(p);
        let mut kk = 0;
        while kk + 4 <= k {
            let (u0, u1, u2, u3) = (xrow[kk], xrow[kk + 1], xrow[kk + 2], xrow[kk + 3]);
            let w0 = wt.row(kk);
            let w1 = wt.row(kk + 1);
            let w2 = wt.row(kk + 2);
            let w3 = wt.row(kk + 3);
            for ((((o, &a0), &a1), &a2), &a3) in orow.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3) {
                *o += u0 * a0 + u1 * a1 + u2 * a2 + u3 * a3;
            }
            kk += 4;
        }
        while kk < k {
            axpy(orow, xrow[kk], wt.row(kk));
            kk += 1;
        }
        for (o, &b) in orow.iter_mut().zip(bias) {
            *o += b;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform(-2.0, 2.0))
    }

    #[test]
    fn split_parts_recompose_the_weights() {
        let mut rng = Rng::seeded(7);
        let w = random_matrix(&mut rng, 5, 9);
        let s = SplitMatrix::compile(&w);
        assert_eq!((s.rows(), s.cols()), (5, 9));
        for i in 0..5 {
            for j in 0..9 {
                let v = s.pos[i * 9 + j] + s.neg[i * 9 + j];
                assert_eq!(v, w.get(i, j));
                assert!(s.pos[i * 9 + j] >= 0.0 && s.neg[i * 9 + j] <= 0.0);
                assert_eq!(s.pos_t[j * 5 + i], s.pos[i * 9 + j]);
                assert_eq!(s.neg_t[j * 5 + i], s.neg[i * 9 + j]);
            }
        }
    }

    #[test]
    fn fused_matvec_matches_signed_scalar_loop() {
        let mut rng = Rng::seeded(11);
        let w = random_matrix(&mut rng, 6, 4);
        let s = SplitMatrix::compile(&w);
        let lo = [-1.0, 0.5, -2.0, 0.0];
        let hi = [1.0, 1.5, -1.0, 3.0];
        let bias = [0.1, -0.2, 0.0, 1.0, -1.0, 0.5];
        let mut lo_out = vec![0.0; 6];
        let mut hi_out = vec![0.0; 6];
        s.fused_interval_matvec(&lo, &hi, &bias, &mut lo_out, &mut hi_out);
        for i in 0..6 {
            // Naive reference: sign-aware accumulation in the same j order.
            let mut l = bias[i];
            let mut h = bias[i];
            for j in 0..4 {
                let wij = w.get(i, j);
                if wij >= 0.0 {
                    l += wij * lo[j];
                    h += wij * hi[j];
                } else {
                    l += wij * hi[j];
                    h += wij * lo[j];
                }
            }
            assert_eq!(lo_out[i], l, "lo row {i}");
            assert_eq!(hi_out[i], h, "hi row {i}");
            assert!(lo_out[i] <= hi_out[i]);
        }
    }

    #[test]
    fn fused_matvec_is_sound_for_interior_points() {
        let mut rng = Rng::seeded(13);
        let w = random_matrix(&mut rng, 8, 5);
        let s = SplitMatrix::compile(&w);
        let lo = vec![-1.0; 5];
        let hi = vec![2.0; 5];
        let bias = vec![0.25; 8];
        let mut lo_out = vec![0.0; 8];
        let mut hi_out = vec![0.0; 8];
        s.fused_interval_matvec(&lo, &hi, &bias, &mut lo_out, &mut hi_out);
        for _ in 0..100 {
            let x: Vec<f64> = (0..5).map(|_| rng.uniform(-1.0, 2.0)).collect();
            let y = w.matvec(&x);
            for i in 0..8 {
                let v = y[i] + bias[i];
                assert!(lo_out[i] - 1e-9 <= v && v <= hi_out[i] + 1e-9);
            }
        }
    }

    #[test]
    fn fused_matmul_reduces_to_matvec_on_single_column() {
        let mut rng = Rng::seeded(17);
        let w = random_matrix(&mut rng, 4, 6);
        let s = SplitMatrix::compile(&w);
        let lo_col: Vec<f64> = (0..6).map(|i| -1.0 - i as f64 * 0.1).collect();
        let hi_col: Vec<f64> = (0..6).map(|i| 1.0 + i as f64 * 0.2).collect();
        let lo_m = Matrix::from_vec(6, 1, lo_col.clone());
        let hi_m = Matrix::from_vec(6, 1, hi_col.clone());
        let (lo_out_m, hi_out_m) = s.fused_interval_matmul(&lo_m, &hi_m);
        let mut lo_out = vec![0.0; 4];
        let mut hi_out = vec![0.0; 4];
        s.fused_interval_matvec(&lo_col, &hi_col, &[0.0; 4], &mut lo_out, &mut hi_out);
        for i in 0..4 {
            assert!((lo_out_m.get(i, 0) - lo_out[i]).abs() < 1e-12);
            assert!((hi_out_m.get(i, 0) - hi_out[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn pack_transpose_matches_transpose() {
        let mut rng = Rng::seeded(31);
        let w = random_matrix(&mut rng, 3, 7);
        assert_eq!(pack_transpose(&w), w.transpose());
    }

    #[test]
    fn axpy_matmul_is_bit_identical_to_naive() {
        let mut rng = Rng::seeded(19);
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (7, 9, 2), (8, 8, 8), (13, 5, 11)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            assert_eq!(matmul(&a, &b), a.matmul(&b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn batch_affine_rows_are_bit_identical_to_matvec() {
        let mut rng = Rng::seeded(23);
        let w = random_matrix(&mut rng, 7, 5);
        let bias: Vec<f64> = (0..7).map(|i| i as f64 * 0.3 - 1.0).collect();
        let x = random_matrix(&mut rng, 10, 5);
        let y = batch_affine_nt(&x, &w, &bias);
        let y_packed = batch_affine_packed(&x, &pack_transpose(&w), &bias);
        assert_eq!(y, y_packed);
        for p in 0..10 {
            let mut single = w.matvec(x.row(p));
            for (v, b) in single.iter_mut().zip(bias.iter()) {
                *v += b;
            }
            assert_eq!(y.row(p), single.as_slice(), "row {p}");
        }
    }

    #[test]
    fn kernels_are_deterministic_across_calls() {
        let mut rng = Rng::seeded(29);
        let a = random_matrix(&mut rng, 9, 6);
        let b = random_matrix(&mut rng, 6, 9);
        assert_eq!(matmul(&a, &b), matmul(&a, &b));
        let s = SplitMatrix::compile(&a);
        let lo = vec![-0.5; 6];
        let hi = vec![0.5; 6];
        let bias = vec![0.0; 9];
        let mut l1 = vec![0.0; 9];
        let mut h1 = vec![0.0; 9];
        let mut l2 = vec![0.0; 9];
        let mut h2 = vec![0.0; 9];
        s.fused_interval_matvec(&lo, &hi, &bias, &mut l1, &mut h1);
        s.fused_interval_matvec(&lo, &hi, &bias, &mut l2, &mut h2);
        assert_eq!(l1, l2);
        assert_eq!(h1, h2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn kernel_mode_roundtrips() {
        assert_eq!(kernel_mode(), KernelMode::Deterministic);
        set_kernel_mode(KernelMode::Outward);
        assert_eq!(kernel_mode(), KernelMode::Outward);
        set_kernel_mode(KernelMode::Deterministic);
        assert_eq!(kernel_mode(), KernelMode::Deterministic);
    }

    #[test]
    fn outward_matvec_contains_deterministic_and_truth() {
        let mut rng = Rng::seeded(41);
        for (rows, cols) in [(1, 1), (3, 5), (7, 13), (16, 16), (33, 9)] {
            let w = random_matrix(&mut rng, rows, cols);
            let s = SplitMatrix::compile(&w);
            let lo: Vec<f64> = (0..cols).map(|_| rng.uniform(-3.0, 1.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|&l| l + rng.uniform(0.0, 2.0)).collect();
            let bias: Vec<f64> = (0..rows).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let (mut dl, mut dh) = (vec![0.0; rows], vec![0.0; rows]);
            let (mut ol, mut oh) = (vec![0.0; rows], vec![0.0; rows]);
            s.fused_interval_matvec(&lo, &hi, &bias, &mut dl, &mut dh);
            s.fused_interval_matvec_outward(&lo, &hi, &bias, &mut ol, &mut oh);
            for i in 0..rows {
                assert!(
                    ol[i] <= dl[i] && dh[i] <= oh[i],
                    "outward [{}, {}] does not contain deterministic [{}, {}] at row {i}",
                    ol[i],
                    oh[i],
                    dl[i],
                    dh[i]
                );
            }
            // Interior points land inside the outward enclosure too.
            for _ in 0..20 {
                let x: Vec<f64> = lo
                    .iter()
                    .zip(&hi)
                    .map(|(&l, &h)| rng.uniform(0.0, 1.0).mul_add(h - l, l))
                    .collect();
                let y = w.matvec(&x);
                for i in 0..rows {
                    let v = y[i] + bias[i];
                    assert!(ol[i] <= v && v <= oh[i], "point escaped outward enclosure");
                }
            }
        }
    }

    #[test]
    fn outward_matvec_widens_even_on_degenerate_inputs() {
        // Zero weights, zero bias: the next_down/next_up finish still has to
        // produce a genuine (one-ulp) enclosure, never an inverted interval.
        let s = SplitMatrix::compile(&Matrix::zeros(2, 3));
        let (mut lo, mut hi) = (vec![0.0; 2], vec![0.0; 2]);
        s.fused_interval_matvec_outward(&[1.0; 3], &[1.0; 3], &[0.0; 2], &mut lo, &mut hi);
        for i in 0..2 {
            assert!(lo[i] < 0.0 && 0.0 < hi[i]);
            assert!(lo[i] >= -1e-300 && hi[i] <= 1e-300);
        }
    }

    #[test]
    fn blocked_matmul_stays_within_rounding_of_deterministic() {
        let mut rng = Rng::seeded(43);
        for (m, k, n) in [(1, 1, 1), (4, 4, 4), (5, 7, 3), (13, 9, 17), (64, 64, 192)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let exact = matmul(&a, &b);
            let blocked = matmul_blocked(&a, &b);
            assert_eq!(blocked.shape(), exact.shape());
            // Per-entry magnitude budget Σ|a|·|b|: the γ_n bound both
            // summation orders obey is relative to it.
            let absa = Matrix::from_fn(m, k, |i, j| a.get(i, j).abs());
            let absb = Matrix::from_fn(k, n, |i, j| b.get(i, j).abs());
            let mag = matmul(&absa, &absb);
            let scale = outward_err_scale(k);
            for i in 0..m {
                for j in 0..n {
                    let diff = (blocked.get(i, j) - exact.get(i, j)).abs();
                    let tol = scale * (1.0 + mag.get(i, j));
                    assert!(diff <= tol, "({i},{j}) diverged by {diff} on {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn outward_batch_affine_stays_within_rounding_of_deterministic() {
        let mut rng = Rng::seeded(47);
        for (npts, k, odim) in [(1, 3, 2), (2, 4, 4), (7, 13, 5), (16, 8, 8)] {
            let w = random_matrix(&mut rng, odim, k);
            let wt = pack_transpose(&w);
            let bias: Vec<f64> = (0..odim).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let x = random_matrix(&mut rng, npts, k);
            let det = batch_affine_packed(&x, &wt, &bias);
            let out = batch_affine_outward(&x, &wt, &bias);
            let absx = Matrix::from_fn(npts, k, |i, j| x.get(i, j).abs());
            let abswt = Matrix::from_fn(k, odim, |i, j| wt.get(i, j).abs());
            let absbias: Vec<f64> = bias.iter().map(|b| b.abs()).collect();
            let mag = batch_affine_packed(&absx, &abswt, &absbias);
            let scale = outward_err_scale(k);
            for p in 0..npts {
                for j in 0..odim {
                    let diff = (out.get(p, j) - det.get(p, j)).abs();
                    let tol = scale * (1.0 + mag.get(p, j));
                    assert!(diff <= tol, "row {p} col {j}: {diff}");
                }
            }
        }
    }

    #[test]
    fn outward_interval_matmul_slack_covers_the_deterministic_gap() {
        let mut rng = Rng::seeded(53);
        for (rows, cols, d) in [(3, 4, 2), (8, 8, 8), (5, 11, 7)] {
            let w = random_matrix(&mut rng, rows, cols);
            let s = SplitMatrix::compile(&w);
            let lo_in = random_matrix(&mut rng, cols, d);
            let hi_in = Matrix::from_fn(cols, d, |i, j| lo_in.get(i, j) + rng.uniform(0.0, 1.0));
            let xmax: Vec<f64> = (0..d).map(|_| rng.uniform(0.5, 2.0)).collect();
            let (det_lo, det_hi) = s.fused_interval_matmul(&lo_in, &hi_in);
            let (out_lo, out_hi, slack) = s.fused_interval_matmul_outward(&lo_in, &hi_in, &xmax);
            for (i, &si) in slack.iter().enumerate() {
                assert!(si >= 0.0);
                // Worst-case value gap between the two coefficient rows over
                // any |x_d| ≤ xmax_d must be covered by the slack.
                let mut gap_lo = 0.0;
                let mut gap_hi = 0.0;
                for (j, &xm) in xmax.iter().enumerate() {
                    gap_lo += (out_lo.get(i, j) - det_lo.get(i, j)).abs() * xm;
                    gap_hi += (out_hi.get(i, j) - det_hi.get(i, j)).abs() * xm;
                }
                assert!(gap_lo <= si, "row {i}: lo gap {gap_lo} > slack {si}");
                assert!(gap_hi <= si, "row {i}: hi gap {gap_hi} > slack {si}");
            }
        }
    }
}
