//! # covern — Continuous Safety Verification of Neural Networks
//!
//! Umbrella crate re-exporting the full `covern` workspace: a Rust
//! reproduction of *"Continuous Safety Verification of Neural Networks"*
//! (Cheng & Yan, DATE 2021).
//!
//! The paper's question: after a DNN's input domain is enlarged by newly
//! monitored out-of-distribution data (**SVuDC**) or the DNN itself is
//! fine-tuned (**SVbTV**), how much of the previous safety proof can be
//! reused instead of re-verifying from scratch? Six sufficient conditions
//! (Propositions 1–6) reduce re-verification to small local subproblems.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |--------|---------------|----------|
//! | [`observe`] | `covern-observe` | process-wide metrics registry (Prometheus text), structured `key=value` logging |
//! | [`tensor`] | `covern-tensor` | dense matrices, vector kernels, operator norms, seeded RNG |
//! | [`nn`] | `covern-nn` | dense networks, activations, SGD training/fine-tuning, frozen conv backbone |
//! | [`absint`] | `covern-absint` | interval / symbolic-interval / zonotope abstract interpretation, state abstractions `S1..Sn` |
//! | [`milp`] | `covern-milp` | simplex LP, branch-and-bound MILP, big-M ReLU encodings (the paper's Equation 2) |
//! | [`lipschitz`] | `covern-lipschitz` | Lipschitz-constant certificates |
//! | [`netabs`] | `covern-netabs` | structural network abstraction and Prop 6 cover checks |
//! | [`monitor`] | `covern-monitor` | runtime activation monitoring, Δin recording |
//! | [`vehicle`] | `covern-vehicle` | simulated 1/10-scale platform (track, camera, control) |
//! | [`core`] | `covern-core` | SVuDC/SVbTV problems, Propositions 1–6, incremental fixing, pipeline |
//! | [`campaign`] | `covern-campaign` | batch campaigns: scenario corpora, content-addressed artifact cache, concurrent runner, JSON reports |
//! | [`service`] | `covern-service` | long-running daemon: `covern-protocol-v1` sessions over stdio/TCP, process-wide artifact cache, `/metrics`, load generator |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end flow: verify a network,
//! keep the proof artifacts, enlarge the domain, and re-verify incrementally
//! via Proposition 1.

pub use covern_absint as absint;
pub use covern_campaign as campaign;
pub use covern_closedloop as closedloop;
pub use covern_core as core;
pub use covern_lipschitz as lipschitz;
pub use covern_milp as milp;
pub use covern_monitor as monitor;
pub use covern_netabs as netabs;
pub use covern_nn as nn;
pub use covern_observe as observe;
pub use covern_service as service;
pub use covern_tensor as tensor;
pub use covern_vehicle as vehicle;
