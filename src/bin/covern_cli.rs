//! `covern-cli` — drive the continuous verifier from scripts.
//!
//! A thin command-line front end over the library so that continuous
//! engineering can be wired into CI/fleet tooling without writing Rust:
//!
//! ```text
//! covern_cli verify   --network f1.json --din din.json --dout dout.json --store state.json
//! covern_cli enlarge  --store state.json --din new_din.json
//! covern_cli update   --store state.json --network f2.json
//! covern_cli status   --store state.json
//! covern_cli campaign --scenarios 20 --threads 4 --seed 42 --out report.json
//! covern_cli serve    --tcp 127.0.0.1:7071 --metrics-http 127.0.0.1:9464
//! covern_cli loadgen  --spawn --sessions 200 --connections 8 --out load.json
//! ```
//!
//! `campaign` generates a seeded scenario corpus (see
//! `covern::campaign::corpus`), executes it concurrently with the
//! content-addressed artifact cache, prints a summary, and writes the JSON
//! campaign report to `--out` (`--canonical` strips wall times for a
//! byte-deterministic report; `--vehicle` appends the lane-following
//! workload; `--min-hits N` fails the run if the cache reused fewer than
//! `N` artifacts — the CI smoke gate).
//!
//! `serve` runs the long-lived verification daemon speaking
//! `covern-protocol-v1` (newline-delimited JSON; spec in
//! `docs/PROTOCOL.md`) on stdio or TCP; concurrent client sessions share
//! one process-wide artifact cache. `--metrics-http ADDR` additionally
//! serves the process metrics as Prometheus text on `GET /metrics`
//! (catalog in `docs/OPERATIONS.md`).
//!
//! `loadgen` drives many concurrent sessions through a daemon — an
//! external one (`--addr`) or one spawned in-process (`--spawn`) — and
//! writes a `covern-loadgen-report-v1` JSON report with measured p50/p99
//! latencies and Busy/backpressure accounting (`--canonical` zeroes the
//! measurements for a seed-deterministic report).
//!
//! Networks use the bit-exact `covern-nn` JSON format
//! (`covern::nn::serialize`); boxes are JSON arrays of `[lo, hi]` pairs.
//! Exit code 0 = property proved (for `serve`: clean shutdown), 2 =
//! unknown/refuted, 1 = usage or I/O error. `covern_cli help [COMMAND]`
//! (or `--help` anywhere) prints the audited flag reference; the help
//! text is snapshot-tested against the real parser in
//! `tests/cli_help.rs`.

use covern::absint::{BoxDomain, DomainKind, SplitStrategy};
use covern::core::artifact::Margin;
use covern::core::method::LocalMethod;
use covern::core::pipeline::ContinuousVerifier;
use covern::core::problem::VerificationProblem;
use covern::service;
use std::collections::HashMap;
use std::process::ExitCode;

/// The full flag reference, one section per subcommand. Every flag listed
/// here is accepted by the corresponding match arm below and vice versa —
/// `tests/cli_help.rs` snapshots this text to keep the two from drifting.
const HELP: &str = "\
covern_cli — continuous safety verification of neural networks

usage: covern_cli <COMMAND> [FLAGS]
       covern_cli help [COMMAND]

commands:
  verify     original verification of a problem, storing proof artifacts
  verify-loop  closed-loop reach-tube verification (controller + plant)
  enlarge    SVuDC delta: re-verify after an input-domain enlargement
  update     SVbTV delta: re-verify after a model fine-tune
  status     print the stored proof state
  campaign   run a seeded batch campaign concurrently with the artifact cache
  cluster    shard a campaign across spawned worker daemons with failover
  serve      run the covern-protocol-v1 verification daemon (stdio or TCP)
  loadgen    drive concurrent sessions through a daemon; measure latency
  help       print this reference (or one command's section)

verify — original verification
  --network F   network JSON file (bit-exact covern-nn format)   [required]
  --din F       input domain: JSON [[lo,hi],…]                   [required]
  --dout F      safety set: JSON [[lo,hi],…]                     [required]
  --store F     artifact store path            [default: covern-state.json]
  --margin REL  relative artifact buffer (e.g. 0.05)          [default: 0.0]
  --splits N    bisection budget for local checks              [default: 64]
  --kernel-mode M  affine-kernel family: deterministic (fixed-lane-order,
                bit-identical canonical reports) or outward (unrolled,
                cache-blocked fast kernels, every interval soundly
                widened outward)                  [default: deterministic]

verify-loop — closed-loop reach-tube verification (controller + plant)
  --case C      built-in lane-keeping workload: safe (stabilizing feedback,
                proved) or unsafe (flipped feedback sign, refuted with a
                replayable witness); overrides --spec/--controller
  --spec F      closed-loop spec JSON: plant, initial set, unsafe region,
                horizon, generator cap, sample budget [required unless --case]
  --controller F  controller network JSON (bit-exact covern-nn format)
                [required unless --case]
  --domain D    abstract domain: box | symbolic | zonotope — only zonotope
                carries the x–u feedback correlation through the plant
                step; box/symbolic soundly widen     [default: zonotope]
  --out F       write the closed-loop report JSON   [default: print to stdout]
  --canonical   zero wall time and reuse counters (byte-deterministic report)
  --kernel-mode M  deterministic | outward (see verify) [default: deterministic]

enlarge — domain-enlargement delta (SVuDC)
  --din F       the enlarged input domain                        [required]
  --store F     artifact store path            [default: covern-state.json]
  --splits N    bisection budget for local checks              [default: 64]
  --refine-strategy S  local-check engine: widest | slack | refine |
                       portfolio | milp (B&B frontier heuristics, plain
                       bisection-refined symbolic analysis — the campaign
                       default — the refiner-vs-MILP race, or pure exact
                       MILP)                             [default: widest]
  --deadline-ms N      anytime wall-clock budget per local check; on
                       expiry the check answers unknown (the milp
                       strategy is bounded by its node budget instead
                       and ignores this flag)            [default: none]

update — model-update delta (SVbTV)
  --network F   the fine-tuned network                           [required]
  --din F       optionally enlarge the domain in the same event
  --store F     artifact store path            [default: covern-state.json]
  --splits N    bisection budget for local checks              [default: 64]
  --refine-strategy S  local-check engine (see enlarge) [default: widest]
  --deadline-ms N      anytime deadline per local check [default: none]

status — inspect the stored proof state
  --store F     artifact store path            [default: covern-state.json]

campaign — concurrent batch verification
  --scenarios N   synthetic scenarios to generate               [default: 20]
  --families N    distinct base models (fine-tune families)      [default: 5]
  --events N      delta events per scenario                      [default: 3]
  --seed N        corpus master seed                            [default: 42]
  --threads N     scenario worker count                           [default: 4]
  --out F         write the JSON report here        [default: print to stdout]
  --canonical     zero all timing fields (byte-deterministic report)
  --vehicle       append the lane-following platform workload
  --closed-loop   append the closed-loop lane-keeping scenarios (reach tubes
                  through controller + plant, warmed by the tube cache)
  --no-cache      disable the content-addressed artifact cache
  --no-proof-reuse  keep the cache but drop its proof-level entries
                  (B&B checkpoints that warm-start post-delta refinement)
  --min-hits N    fail unless the cache reused ≥ N artifacts     [default: 0]
  --cluster N     shard across N spawned worker daemons instead of running
                  in-process (see the cluster command)          [default: 0]
  --kernel-mode M deterministic | outward (see verify) [default: deterministic]

cluster — sharded multi-worker campaign with failover
  --workers N     worker daemons to spawn (covern_cli serve)      [default: 2]
  --scenarios N   synthetic scenarios to generate               [default: 20]
  --families N    distinct base models (fine-tune families)      [default: 5]
  --events N      delta events per scenario                      [default: 3]
  --seed N        corpus master seed                            [default: 42]
  --threads N     campaign thread budget (report header + drivers) [default: 4]
  --deadline-ms N per-request reply deadline; a worker that blows it is
                  retired and its sessions reassigned     [default: 30000]
  --ping-ms N     worker health-check interval               [default: 1000]
  --store-dir D   checkpoint/spill directory  [default: temp, removed on exit]
  --kill-after N  fault drill: SIGKILL worker 0 after the Nth verdict; the
                  campaign must still finish with an identical canonical
                  report                                 [default: disabled]
  --respawn-budget N  replacement daemons the health monitor may launch for
                  dead spawned workers (0 disables auto-respawn) [default: 2]
  --out F         write the JSON report here        [default: print to stdout]
  --canonical     zero all timing fields (byte-deterministic report)

serve — the verification daemon (covern-protocol-v1, see docs/PROTOCOL.md)
  --stdio              serve stdin/stdout                          [default]
  --tcp ADDR           serve TCP on ADDR (e.g. 127.0.0.1:7071; port 0 picks)
  --metrics-http ADDR  also serve GET /metrics (Prometheus text) on ADDR
                       (see docs/OPERATIONS.md)          [default: disabled]
  --workers N          drain-task worker pool size  [default: machine cores]
  --session-threads N  per-session verifier thread budget        [default: 1]
  --inbox N            per-session bounded-inbox capacity       [default: 32]
  --splits N           bisection budget for local checks        [default: 256]
  --refine-strategy S  local-check engine (see enlarge) [default: widest]
  --deadline-ms N      anytime deadline per local check [default: none]
  --kernel-mode M      deterministic | outward (see verify)
                       [default: deterministic]

loadgen — concurrent-session load generator (report: covern-loadgen-report-v1)
  --addr ADDR     drive a daemon already listening on ADDR
  --spawn         spawn an in-process daemon on a loopback port instead
  --sessions N    concurrent sessions (one corpus scenario each) [default: 50]
  --connections N client connections (threads)                    [default: 8]
  --events N      ordered delta events per session                [default: 3]
  --families N    distinct base-model families                    [default: 5]
  --burst N       pipelined idempotent deltas per session          [default: 4]
  --qps N         sustained arrival rate: pace session starts at N per
                  second (open/close churn) instead of all-at-once
                  [default: 0 = unpaced]
  --inbox N       (--spawn only) per-session inbox capacity       [default: 32]
  --workers N     (--spawn only) drain-task pool size  [default: machine cores]
  --seed N        corpus master seed                            [default: 2021]
  --out F         write the JSON report here        [default: print to stdout]
  --canonical     zero timing/contention fields (seed-deterministic report)

exit codes: 0 property proved / clean shutdown / loadgen passed;
            2 unknown or refuted / loadgen failed its bar;
            1 usage, I/O, or protocol error
";

fn usage() -> ExitCode {
    eprintln!("{HELP}");
    ExitCode::FAILURE
}

/// Prints the whole help (no command, or `help` itself) or one
/// command's section.
fn print_help(command: Option<&str>) -> Result<(), String> {
    match command {
        // `help` is in the commands table but has no flag section of its
        // own; `covern_cli help help` prints the full reference.
        None | Some("help") => {
            println!("{HELP}");
            Ok(())
        }
        Some(cmd) => {
            // A command's section runs from its "cmd — …" heading to the
            // next blank-line-separated heading.
            let needle = format!("{cmd} — ");
            let start = HELP
                .lines()
                .position(|l| l.starts_with(&needle))
                .ok_or_else(|| format!("unknown command {cmd:?}"))?;
            let lines: Vec<&str> = HELP.lines().collect();
            let end = lines[start + 1..]
                .iter()
                .position(|l| l.is_empty())
                .map_or(lines.len(), |i| start + 1 + i);
            for line in &lines[start..end] {
                println!("{line}");
            }
            Ok(())
        }
    }
}

/// Flags that take no value; everything else must be followed by one
/// (a forgotten value stays a usage error, not a silent `"true"`).
const BOOLEAN_FLAGS: [&str; 8] =
    ["canonical", "vehicle", "closed-loop", "no-cache", "no-proof-reuse", "stdio", "spawn", "help"];

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--")?;
        let value =
            if BOOLEAN_FLAGS.contains(&key) { "true".to_owned() } else { it.next()?.clone() };
        flags.insert(key.to_owned(), value);
    }
    Some(flags)
}

/// Reads an integer flag, falling back to `default` when absent.
fn parse_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    flags
        .get(key)
        .map(|s| s.parse().map_err(|_| format!("--{key} must be an integer")))
        .transpose()
        .map(|v| v.unwrap_or(default))
}

/// Builds the local-check method from `--refine-strategy`, `--splits`,
/// and `--deadline-ms`.
///
/// * `widest` / `slack` — parallel branch-and-bound refinement with the
///   named frontier heuristic;
/// * `refine` — plain bisection-refined symbolic analysis, the campaign
///   engine's default method (cluster workers are spawned with this so a
///   sharded campaign replicates the single-process engine verdict for
///   verdict; no deadline — its cost is bounded by the split budget);
/// * `portfolio` — race the refiner against exact MILP, first sound
///   answer wins;
/// * `milp` — pure exact MILP (ignores the deadline: MILP is bounded by
///   its node budget instead).
fn parse_method(flags: &HashMap<String, String>, splits: usize) -> Result<LocalMethod, String> {
    let deadline_ms = flags
        .get("deadline-ms")
        .map(|s| s.parse::<u64>().map_err(|_| "--deadline-ms must be an integer".to_owned()))
        .transpose()?;
    let strategy = flags.get("refine-strategy").map(String::as_str).unwrap_or("widest");
    let method = match strategy {
        "widest" | "slack" => LocalMethod::Bnb {
            domain: DomainKind::Symbolic,
            strategy: if strategy == "widest" {
                SplitStrategy::WidestDim
            } else {
                SplitStrategy::OutputSlack
            },
            max_splits: splits,
            deadline_ms,
        },
        "refine" => LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: splits },
        "portfolio" => LocalMethod::Portfolio {
            domain: DomainKind::Symbolic,
            max_splits: splits,
            node_limit: covern::milp::query::DEFAULT_NODE_LIMIT,
            deadline_ms,
        },
        "milp" => LocalMethod::Milp { node_limit: covern::milp::query::DEFAULT_NODE_LIMIT },
        other => {
            return Err(format!(
                "--refine-strategy must be widest, slack, refine, portfolio, or milp, got \
                 {other:?}"
            ))
        }
    };
    Ok(method)
}

/// Applies `--kernel-mode` to the process-global kernel dispatch and
/// mirrors the choice into the `covern_kernel_mode_outward` gauge so a
/// scrape can tell which family produced the numbers it is looking at.
fn apply_kernel_mode(flags: &HashMap<String, String>) -> Result<(), String> {
    use covern::tensor::kernels::{set_kernel_mode, KernelMode};
    let mode = match flags.get("kernel-mode").map(String::as_str) {
        None | Some("deterministic") => KernelMode::Deterministic,
        Some("outward") => KernelMode::Outward,
        Some(other) => {
            return Err(format!("--kernel-mode must be deterministic or outward, got {other:?}"))
        }
    };
    set_kernel_mode(mode);
    covern::observe::metrics().kernel_mode_outward.set(i64::from(mode == KernelMode::Outward));
    Ok(())
}

fn load_box(path: &str) -> Result<BoxDomain, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pairs: Vec<(f64, f64)> =
        serde_json::from_str(&s).map_err(|e| format!("{path}: not a [[lo,hi],…] array: {e}"))?;
    BoxDomain::from_bounds(&pairs).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        print_help(rest.first().map(String::as_str))?;
        return Ok(true);
    }
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    if flags.contains_key("help") {
        print_help(Some(cmd))?;
        return Ok(true);
    }
    let store = flags.get("store").cloned().unwrap_or_else(|| "covern-state.json".into());
    let splits: usize = flags
        .get("splits")
        .map(|s| s.parse().map_err(|_| "--splits must be an integer"))
        .transpose()?
        .unwrap_or(64);
    let method = parse_method(&flags, splits)?;

    match cmd.as_str() {
        "verify" => {
            apply_kernel_mode(&flags)?;
            let network = flags.get("network").ok_or("verify needs --network")?;
            let din = load_box(flags.get("din").ok_or("verify needs --din")?)?;
            let dout = load_box(flags.get("dout").ok_or("verify needs --dout")?)?;
            let net = covern::nn::serialize::load(network).map_err(|e| e.to_string())?;
            // Margins trade proof tightness for reuse robustness; buffering
            // is opt-in because a margin can sink a *tight* property (the
            // buffered boxes must still fit Dout). `--margin 0.05` matches
            // Margin::standard()'s relative part.
            let margin = match flags.get("margin") {
                Some(m) => {
                    let rel: f64 = m.parse().map_err(|_| "--margin must be a float")?;
                    Margin { rel, abs: 0.0 }
                }
                None => Margin::NONE,
            };
            let problem = VerificationProblem::new(net, din, dout).map_err(|e| e.to_string())?;
            let verifier = ContinuousVerifier::with_margin(problem, DomainKind::Box, margin)
                .map_err(|e| e.to_string())?;
            println!("original verification: {}", verifier.initial_report());
            verifier.save_to(&store).map_err(|e| e.to_string())?;
            println!("state saved to {store}");
            Ok(verifier.initial_report().outcome.is_proved())
        }
        "verify-loop" => {
            apply_kernel_mode(&flags)?;
            use covern::closedloop::{ClosedLoopSpec, LoopVerifier, TubeCache};
            let domain = match flags.get("domain").map(String::as_str) {
                None | Some("zonotope") => DomainKind::Zonotope,
                Some("box") => DomainKind::Box,
                Some("symbolic") => DomainKind::Symbolic,
                Some(other) => {
                    return Err(format!(
                        "--domain must be box, symbolic, or zonotope, got {other:?}"
                    ))
                }
            };
            let (spec, controller) = match flags.get("case").map(String::as_str) {
                Some("safe") => {
                    let case = covern::vehicle::lateral::safe_case();
                    (case.spec, case.controller)
                }
                Some("unsafe") => {
                    let case = covern::vehicle::lateral::unsafe_case();
                    (case.spec, case.controller)
                }
                Some(other) => return Err(format!("--case must be safe or unsafe, got {other:?}")),
                None => {
                    let spec_path =
                        flags.get("spec").ok_or("verify-loop needs --case or --spec")?;
                    let text = std::fs::read_to_string(spec_path)
                        .map_err(|e| format!("{spec_path}: {e}"))?;
                    let spec: ClosedLoopSpec = serde_json::from_str(&text)
                        .map_err(|e| format!("{spec_path}: not a closed-loop spec: {e}"))?;
                    let ctrl_path = flags
                        .get("controller")
                        .ok_or("verify-loop needs --controller with --spec")?;
                    let net = covern::nn::serialize::load(ctrl_path).map_err(|e| e.to_string())?;
                    (spec, net)
                }
            };
            let mut verifier =
                LoopVerifier::new(spec, controller, domain).map_err(|e| e.to_string())?;
            verifier.set_cache(Some(std::sync::Arc::new(TubeCache::new())));
            let report = verifier.verify().map_err(|e| e.to_string())?;
            println!(
                "closed-loop: {} over horizon {} in the {} domain ({} steps computed)",
                report.outcome, report.horizon, report.domain, report.steps_computed
            );
            // A refutation's witness is replayed concretely so CI (and a
            // suspicious operator) can see the violation is real, not an
            // abstraction artifact.
            if let (Some(witness), Some(step)) = (&report.witness, report.witness_step) {
                match verifier.replay_witness(witness).map_err(|e| e.to_string())? {
                    Some((at, state)) => println!(
                        "witness replay: init {witness:?} concretely reaches unsafe state \
                         {state:?} at step {at} (tube flagged step {step})"
                    ),
                    None => {
                        return Err(format!(
                            "witness {witness:?} failed to replay into the unsafe region"
                        ))
                    }
                }
            }
            let to_write =
                if flags.contains_key("canonical") { report.canonical() } else { report.clone() };
            let json = serde_json::to_string(&to_write).map_err(|e| e.to_string())?;
            if let Some(out) = flags.get("out") {
                std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
                println!("report written to {out}");
            } else {
                println!("{json}");
            }
            Ok(report.outcome == "proved")
        }
        "enlarge" => {
            let din = load_box(flags.get("din").ok_or("enlarge needs --din")?)?;
            let mut verifier =
                ContinuousVerifier::resume_from(&store).map_err(|e| e.to_string())?;
            let report = verifier.on_domain_enlarged(&din, &method).map_err(|e| e.to_string())?;
            println!("{report}");
            verifier.save_to(&store).map_err(|e| e.to_string())?;
            Ok(report.outcome.is_proved())
        }
        "update" => {
            let network = flags.get("network").ok_or("update needs --network")?;
            let net = covern::nn::serialize::load(network).map_err(|e| e.to_string())?;
            let mut verifier =
                ContinuousVerifier::resume_from(&store).map_err(|e| e.to_string())?;
            let new_din = flags.get("din").map(|p| load_box(p)).transpose()?;
            let report = verifier
                .on_model_updated(&net, new_din.as_ref(), &method)
                .map_err(|e| e.to_string())?;
            println!("{report}");
            verifier.save_to(&store).map_err(|e| e.to_string())?;
            Ok(report.outcome.is_proved())
        }
        "campaign" => {
            apply_kernel_mode(&flags)?;
            let parse = |key: &str, default: u64| parse_u64(&flags, key, default);
            let corpus_config = covern::campaign::CorpusConfig {
                scenarios: parse("scenarios", 20)? as usize,
                families: parse("families", 5)? as usize,
                events_per_scenario: parse("events", 3)? as usize,
                seed: parse("seed", 42)?,
                include_vehicle: flags.contains_key("vehicle"),
                include_closed_loop: flags.contains_key("closed-loop"),
            };
            let threads = parse("threads", 4)? as usize;
            let corpus =
                covern::campaign::corpus::generate(&corpus_config).map_err(|e| e.to_string())?;
            let cluster_workers = parse("cluster", 0)? as usize;
            let report = if cluster_workers > 0 {
                if flags.contains_key("no-cache") || flags.contains_key("no-proof-reuse") {
                    return Err("campaign --cluster always uses the workers' caches; drop \
                                --no-cache / --no-proof-reuse"
                        .into());
                }
                let mut cluster = service::Cluster::launch(service::ClusterConfig {
                    workers: cluster_workers,
                    threads,
                    ..service::ClusterConfig::default()
                })
                .map_err(|e| e.to_string())?;
                let report = cluster.run_campaign(&corpus).map_err(|e| e.to_string());
                cluster.shutdown();
                report?
            } else {
                let engine =
                    covern::campaign::CampaignEngine::new(covern::campaign::CampaignConfig {
                        threads,
                        use_cache: !flags.contains_key("no-cache"),
                        use_proof_reuse: !flags.contains_key("no-proof-reuse"),
                        ..covern::campaign::CampaignConfig::default()
                    });
                engine.run(&corpus).map_err(|e| e.to_string())?
            };

            println!(
                "campaign: {} scenarios on {} threads ({} per-scenario)",
                report.scenarios.len(),
                report.threads,
                report.scenario_threads
            );
            println!(
                "verdicts: {} proved, {} refuted, {} unknown, {} errors",
                report.proved, report.refuted, report.unknown, report.errors
            );
            println!(
                "cache: {} hits, {} misses, {} entries",
                report.cache.hits, report.cache.misses, report.cache.entries
            );
            println!(
                "proof reuse: {} warm starts, {} cold refinements, {} B&B splits",
                report.cache.proof_hits, report.cache.proof_misses, report.bnb_splits
            );
            println!(
                "time: {:.1} ms wall vs {:.1} ms sequential ({:.2}x)",
                report.wall_us as f64 / 1000.0,
                report.sequential_us as f64 / 1000.0,
                report.sequential_us as f64 / report.wall_us.max(1) as f64
            );
            let json = if flags.contains_key("canonical") {
                report.canonical_json()
            } else {
                report.to_json()
            }
            .map_err(|e| e.to_string())?;
            if let Some(out) = flags.get("out") {
                std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
                println!("report written to {out}");
            } else {
                println!("{json}");
            }
            let min_hits = parse("min-hits", 0)?;
            if report.cache.hits < min_hits {
                return Err(format!(
                    "cache reused {} artifacts, expected at least {min_hits}",
                    report.cache.hits
                ));
            }
            Ok(report.refuted == 0 && report.unknown == 0 && report.errors == 0)
        }
        "cluster" => {
            let parse = |key: &str, default: u64| parse_u64(&flags, key, default);
            covern::observe::log::set_default_level(covern::observe::Level::Info);
            let corpus_config = covern::campaign::CorpusConfig {
                scenarios: parse("scenarios", 20)? as usize,
                families: parse("families", 5)? as usize,
                events_per_scenario: parse("events", 3)? as usize,
                seed: parse("seed", 42)?,
                include_vehicle: false,
                include_closed_loop: false,
            };
            let corpus =
                covern::campaign::corpus::generate(&corpus_config).map_err(|e| e.to_string())?;
            let reassigned_before = covern::observe::metrics().cluster_reassignments_total.get();
            let config = service::ClusterConfig {
                workers: parse("workers", 2)?.max(1) as usize,
                threads: parse("threads", 4)?.max(1) as usize,
                deadline: std::time::Duration::from_millis(parse("deadline-ms", 30_000)?.max(1)),
                ping_interval: std::time::Duration::from_millis(parse("ping-ms", 1_000)?.max(1)),
                store_dir: flags.get("store-dir").map(std::path::PathBuf::from),
                kill_after: match parse("kill-after", 0)? {
                    0 => None,
                    n => Some(service::KillAfter { worker: 0, after_verdicts: n }),
                },
                respawn_budget: parse("respawn-budget", 2)? as usize,
                ..service::ClusterConfig::default()
            };
            let workers = config.workers;
            let mut cluster = service::Cluster::launch(config).map_err(|e| e.to_string())?;
            let report = {
                let run = cluster.run_campaign(&corpus).map_err(|e| e.to_string());
                let alive = cluster.workers_alive();
                cluster.shutdown();
                let report = run?;
                println!(
                    "cluster: {} scenarios over {workers} workers ({alive} alive at finish), \
                     {} reassignments",
                    report.scenarios.len(),
                    covern::observe::metrics()
                        .cluster_reassignments_total
                        .get()
                        .saturating_sub(reassigned_before)
                );
                report
            };
            println!(
                "verdicts: {} proved, {} refuted, {} unknown, {} errors",
                report.proved, report.refuted, report.unknown, report.errors
            );
            println!(
                "cache (summed over workers): {} hits, {} misses, {} entries",
                report.cache.hits, report.cache.misses, report.cache.entries
            );
            let json = if flags.contains_key("canonical") {
                report.canonical_json()
            } else {
                report.to_json()
            }
            .map_err(|e| e.to_string())?;
            if let Some(out) = flags.get("out") {
                std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
                println!("report written to {out}");
            } else {
                println!("{json}");
            }
            Ok(report.refuted == 0 && report.unknown == 0 && report.errors == 0)
        }
        "serve" => {
            apply_kernel_mode(&flags)?;
            let parse = |key: &str, default: u64| parse_u64(&flags, key, default);
            if flags.contains_key("stdio") && flags.contains_key("tcp") {
                return Err("serve takes --stdio or --tcp ADDR, not both".into());
            }
            // Daemons default to lifecycle-level logging; COVERN_LOG wins.
            covern::observe::log::set_default_level(covern::observe::Level::Info);
            let config = service::ServiceConfig {
                workers: parse("workers", 0)? as usize,
                session_threads: parse("session-threads", 1)?.max(1) as usize,
                inbox_capacity: parse("inbox", 32)?.max(1) as usize,
                method: parse_method(&flags, parse("splits", 256)? as usize)?,
            };
            let svc = service::Service::new(config);
            let metrics_server = flags
                .get("metrics-http")
                .map(|addr| service::serve_metrics_http(std::sync::Arc::clone(&svc), addr))
                .transpose()
                .map_err(|e| e.to_string())?;
            if let Some(m) = &metrics_server {
                eprintln!("covern-service metrics on http://{}/metrics", m.local_addr());
            }
            match flags.get("tcp") {
                Some(addr) => {
                    let server = service::serve_tcp(svc, addr).map_err(|e| e.to_string())?;
                    // Stderr, so stdout stays clean if anyone pipes it.
                    eprintln!("covern-service listening on {}", server.local_addr());
                    server.join();
                }
                None => {
                    eprintln!("covern-service serving stdio (send Shutdown or EOF to stop)");
                    service::serve_stdio(&svc).map_err(|e| e.to_string())?;
                }
            }
            if let Some(m) = metrics_server {
                m.join();
            }
            eprintln!("covern-service stopped");
            Ok(true)
        }
        "loadgen" => {
            let parse = |key: &str, default: u64| parse_u64(&flags, key, default);
            covern::observe::log::set_default_level(covern::observe::Level::Info);
            let config = service::LoadgenConfig {
                sessions: parse("sessions", 50)?.max(1) as usize,
                connections: parse("connections", 8)?.max(1) as usize,
                events_per_session: parse("events", 3)? as usize,
                families: parse("families", 5)?.max(1) as usize,
                burst: parse("burst", 4)? as usize,
                qps: parse("qps", 0)?,
                seed: parse("seed", 2021)?,
            };
            let spawned = match (flags.get("addr"), flags.contains_key("spawn")) {
                (Some(_), true) => return Err("loadgen takes --addr or --spawn, not both".into()),
                (None, false) => return Err("loadgen needs --addr ADDR or --spawn".into()),
                (Some(addr), false) => {
                    eprintln!("loadgen: driving daemon at {addr}");
                    None
                }
                (None, true) => {
                    let svc = service::Service::new(service::ServiceConfig {
                        workers: parse("workers", 0)? as usize,
                        inbox_capacity: parse("inbox", 32)?.max(1) as usize,
                        ..service::ServiceConfig::default()
                    });
                    let server =
                        service::serve_tcp(svc, "127.0.0.1:0").map_err(|e| e.to_string())?;
                    eprintln!("loadgen: spawned in-process daemon on {}", server.local_addr());
                    Some(server)
                }
            };
            let addr = match &spawned {
                Some(server) => server.local_addr().to_string(),
                None => flags.get("addr").cloned().expect("checked above"),
            };
            let report = service::loadgen::run(&addr, &config).map_err(|e| e.to_string())?;
            if let Some(server) = spawned {
                let mut client = service::Client::connect(&*addr).map_err(|e| e.to_string())?;
                client.shutdown().map_err(|e| e.to_string())?;
                server.join();
            }

            eprintln!(
                "loadgen: {} sessions over {} connections: {} verdicts ({}P/{}R/{}U), {} errors",
                report.totals.sessions,
                report.config.connections,
                report.totals.verdicts,
                report.totals.proved,
                report.totals.refuted,
                report.totals.unknown,
                report.totals.errors
            );
            eprintln!(
                "loadgen: open p50/p99 {}/{} us; verdict p50/p99 {}/{} us; busy {} (retries {}, \
                 recovered {})",
                report.open_latency.p50_us,
                report.open_latency.p99_us,
                report.verdict_latency.p50_us,
                report.verdict_latency.p99_us,
                report.backpressure.busy_replies,
                report.backpressure.retries,
                report.backpressure.recovered
            );
            let json = if flags.contains_key("canonical") {
                report.canonical_json()
            } else {
                report.to_json()
            }
            .map_err(|e| e.to_string())?;
            if let Some(out) = flags.get("out") {
                std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
                eprintln!("loadgen: report written to {out}");
            } else {
                println!("{json}");
            }
            Ok(report.passed())
        }
        "status" => {
            let verifier = ContinuousVerifier::resume_from(&store).map_err(|e| e.to_string())?;
            println!("proof status: {}", verifier.initial_report().outcome);
            println!("network: {}", verifier.problem().network());
            println!("Din: {}", verifier.problem().din());
            println!("Dout: {}", verifier.problem().dout());
            let a = verifier.artifacts();
            println!(
                "artifacts: state={}, lipschitz={}, network abstraction={}",
                a.state.is_some(),
                a.lipschitz.is_some(),
                a.network_abstraction.is_some()
            );
            Ok(verifier.initial_report().outcome.is_proved())
        }
        _ => Err(format!("unknown command {cmd:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(msg) => {
            eprintln!("error: {msg}");
            usage()
        }
    }
}
