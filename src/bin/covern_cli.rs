//! `covern-cli` — drive the continuous verifier from scripts.
//!
//! A thin command-line front end over the library so that continuous
//! engineering can be wired into CI/fleet tooling without writing Rust:
//!
//! ```text
//! covern_cli verify  --network f1.json --din din.json --dout dout.json --store state.json
//! covern_cli enlarge --store state.json --din new_din.json
//! covern_cli update  --store state.json --network f2.json
//! covern_cli status  --store state.json
//! ```
//!
//! Networks use the bit-exact `covern-nn` JSON format
//! (`covern::nn::serialize`); boxes are JSON arrays of `[lo, hi]` pairs.
//! Exit code 0 = property proved, 2 = unknown/refuted, 1 = usage or I/O
//! error.

use covern::absint::{BoxDomain, DomainKind};
use covern::core::artifact::Margin;
use covern::core::method::LocalMethod;
use covern::core::pipeline::ContinuousVerifier;
use covern::core::problem::VerificationProblem;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: covern_cli <verify|enlarge|update|status> [--network F] [--din F] [--dout F] \
         [--store F] [--margin REL] [--splits N]"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(key.to_owned(), value.clone());
    }
    Some(flags)
}

fn load_box(path: &str) -> Result<BoxDomain, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pairs: Vec<(f64, f64)> =
        serde_json::from_str(&s).map_err(|e| format!("{path}: not a [[lo,hi],…] array: {e}"))?;
    BoxDomain::from_bounds(&pairs).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    let store = flags.get("store").cloned().unwrap_or_else(|| "covern-state.json".into());
    let splits: usize = flags
        .get("splits")
        .map(|s| s.parse().map_err(|_| "--splits must be an integer"))
        .transpose()?
        .unwrap_or(64);
    let method = LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: splits };

    match cmd.as_str() {
        "verify" => {
            let network = flags.get("network").ok_or("verify needs --network")?;
            let din = load_box(flags.get("din").ok_or("verify needs --din")?)?;
            let dout = load_box(flags.get("dout").ok_or("verify needs --dout")?)?;
            let net = covern::nn::serialize::load(network).map_err(|e| e.to_string())?;
            // Margins trade proof tightness for reuse robustness; buffering
            // is opt-in because a margin can sink a *tight* property (the
            // buffered boxes must still fit Dout). `--margin 0.05` matches
            // Margin::standard()'s relative part.
            let margin = match flags.get("margin") {
                Some(m) => {
                    let rel: f64 = m.parse().map_err(|_| "--margin must be a float")?;
                    Margin { rel, abs: 0.0 }
                }
                None => Margin::NONE,
            };
            let problem = VerificationProblem::new(net, din, dout).map_err(|e| e.to_string())?;
            let verifier = ContinuousVerifier::with_margin(problem, DomainKind::Box, margin)
                .map_err(|e| e.to_string())?;
            println!("original verification: {}", verifier.initial_report());
            verifier.save_to(&store).map_err(|e| e.to_string())?;
            println!("state saved to {store}");
            Ok(verifier.initial_report().outcome.is_proved())
        }
        "enlarge" => {
            let din = load_box(flags.get("din").ok_or("enlarge needs --din")?)?;
            let mut verifier =
                ContinuousVerifier::resume_from(&store).map_err(|e| e.to_string())?;
            let report = verifier.on_domain_enlarged(&din, &method).map_err(|e| e.to_string())?;
            println!("{report}");
            verifier.save_to(&store).map_err(|e| e.to_string())?;
            Ok(report.outcome.is_proved())
        }
        "update" => {
            let network = flags.get("network").ok_or("update needs --network")?;
            let net = covern::nn::serialize::load(network).map_err(|e| e.to_string())?;
            let mut verifier =
                ContinuousVerifier::resume_from(&store).map_err(|e| e.to_string())?;
            let new_din = flags.get("din").map(|p| load_box(p)).transpose()?;
            let report = verifier
                .on_model_updated(&net, new_din.as_ref(), &method)
                .map_err(|e| e.to_string())?;
            println!("{report}");
            verifier.save_to(&store).map_err(|e| e.to_string())?;
            Ok(report.outcome.is_proved())
        }
        "status" => {
            let verifier = ContinuousVerifier::resume_from(&store).map_err(|e| e.to_string())?;
            println!("proof status: {}", verifier.initial_report().outcome);
            println!("network: {}", verifier.problem().network());
            println!("Din: {}", verifier.problem().din());
            println!("Dout: {}", verifier.problem().dout());
            let a = verifier.artifacts();
            println!(
                "artifacts: state={}, lipschitz={}, network abstraction={}",
                a.state.is_some(),
                a.lipschitz.is_some(),
                a.network_abstraction.is_some()
            );
            Ok(verifier.initial_report().outcome.is_proved())
        }
        _ => Err(format!("unknown command {cmd:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(msg) => {
            eprintln!("error: {msg}");
            usage()
        }
    }
}
