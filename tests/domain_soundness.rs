//! Property-based soundness of the abstract domains.
//!
//! The invariant that makes every campaign verdict trustworthy: for *any*
//! network and *any* input box, each abstract domain's reach set must
//! contain the concrete outputs of every point in the box — at **every
//! layer**, not just the output (the per-layer boxes are exactly the
//! `S1..Sn` proof artifacts the continuous pipeline reuses).
//!
//! Seeds are pinned by construction: the proptest shim derives each
//! test's RNG from its name, and the networks/boxes inside a case derive
//! from the drawn `seed` value — a failing case therefore reproduces
//! exactly on re-run, and its `seed`/geometry values identify it.

use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::core::artifact::{Margin, StateAbstractionArtifact};
use covern::nn::{Activation, Network};
use covern::tensor::Rng;
use proptest::prelude::*;
use proptest::TestCaseError;

/// Architectures cycled by seed — depths 2–4, widths 4–10, 1–2 outputs.
const DIMS: [&[usize]; 4] = [&[2, 5, 1], &[3, 8, 6, 1], &[2, 6, 4, 2], &[4, 10, 6, 4, 1]];

/// Output activations cycled by seed (hidden layers stay ReLU — the
/// paper's setting — while the output exercises each family).
const OUT_ACTS: [Activation; 4] =
    [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh];

fn case_net(seed: u64) -> Network {
    let dims = DIMS[(seed % DIMS.len() as u64) as usize];
    let out = OUT_ACTS[((seed / 7) % OUT_ACTS.len() as u64) as usize];
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Network::random(dims, Activation::Relu, out, &mut rng)
}

fn case_box(net: &Network, half_width: f64, offset: f64) -> BoxDomain {
    let bounds: Vec<(f64, f64)> =
        (0..net.input_dim()).map(|_| (offset - half_width, offset + half_width)).collect();
    BoxDomain::from_bounds(&bounds).expect("half_width > 0")
}

fn sample_in(b: &BoxDomain, rng: &mut Rng) -> Vec<f64> {
    b.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect()
}

/// Fires `samples` concrete executions and checks every layer's value
/// against the recorded per-layer box.
fn assert_reach_contains_trace(
    net: &Network,
    din: &BoxDomain,
    domain: DomainKind,
    seed: u64,
    samples: usize,
) -> Result<(), TestCaseError> {
    let reach = reach_boxes(net, din, domain).expect("reach runs");
    let mut rng = Rng::seeded(seed ^ 0xdead_beef);
    for _ in 0..samples {
        let x = sample_in(din, &mut rng);
        let trace = net.forward_trace(&x).expect("forward runs");
        for (k, values) in trace.iter().enumerate() {
            let padded = reach.layer_box(k + 1).expect("layer box exists").dilate(1e-9);
            prop_assert!(
                padded.contains(values),
                "{domain:?} unsound at seed {seed}, layer {}: x={x:?} -> {values:?} \
                 escapes {padded}",
                k + 1
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn box_reach_contains_concrete_traces(
        seed in 0u64..100_000,
        half_width in 0.05f64..1.5,
        offset in -0.5f64..0.5,
    ) {
        let net = case_net(seed);
        let din = case_box(&net, half_width, offset);
        assert_reach_contains_trace(&net, &din, DomainKind::Box, seed, 24)?;
    }

    #[test]
    fn symbolic_reach_contains_concrete_traces(
        seed in 0u64..100_000,
        half_width in 0.05f64..1.5,
        offset in -0.5f64..0.5,
    ) {
        let net = case_net(seed.wrapping_add(1_000_000));
        let din = case_box(&net, half_width, offset);
        assert_reach_contains_trace(&net, &din, DomainKind::Symbolic, seed, 24)?;
    }

    #[test]
    fn zonotope_reach_contains_concrete_traces(
        seed in 0u64..100_000,
        half_width in 0.05f64..1.5,
        offset in -0.5f64..0.5,
    ) {
        let net = case_net(seed.wrapping_add(2_000_000));
        let din = case_box(&net, half_width, offset);
        assert_reach_contains_trace(&net, &din, DomainKind::Zonotope, seed, 24)?;
    }

    #[test]
    fn buffered_artifacts_contain_concrete_traces(
        seed in 0u64..100_000,
        half_width in 0.05f64..1.0,
    ) {
        // The buffered-chain artifact (the campaign corpus default) must
        // stay an over-approximation at every layer, for every domain.
        let net = case_net(seed.wrapping_add(3_000_000));
        let din = case_box(&net, half_width, 0.0);
        let dout = reach_boxes(&net, &din, DomainKind::Box).expect("reach").output().dilate(1.0);
        for domain in DomainKind::ALL {
            let art =
                StateAbstractionArtifact::build_with_margin(&net, &din, &dout, domain, Margin::standard())
                    .expect("artifact builds");
            let mut rng = Rng::seeded(seed ^ 0xabcd);
            for _ in 0..12 {
                let x = sample_in(&din, &mut rng);
                let trace = net.forward_trace(&x).expect("forward runs");
                for (k, values) in trace.iter().enumerate() {
                    let si = art.layers().layer_box(k + 1).expect("Si exists").dilate(1e-9);
                    prop_assert!(
                        si.contains(values),
                        "buffered {domain:?} artifact unsound at seed {seed}, layer {}",
                        k + 1
                    );
                }
            }
        }
    }
}
