//! Snapshot test over `covern_cli`'s help output.
//!
//! The help text is a hand-maintained flag reference; this suite pins it
//! byte-for-byte (so any flag change must touch the reference in the same
//! commit) and audits that every flag each subcommand actually accepts is
//! documented in its section — the drift this guards against is real: the
//! `campaign` flags grew for a while without a help update.

use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_covern_cli"))
        .args(args)
        .output()
        .expect("covern_cli binary runs")
}

/// The canonical snapshot: `covern_cli help` on stdout, exit 0.
const HELP_SNAPSHOT: &str = "\
covern_cli — continuous safety verification of neural networks

usage: covern_cli <COMMAND> [FLAGS]
       covern_cli help [COMMAND]

commands:
  verify     original verification of a problem, storing proof artifacts
  verify-loop  closed-loop reach-tube verification (controller + plant)
  enlarge    SVuDC delta: re-verify after an input-domain enlargement
  update     SVbTV delta: re-verify after a model fine-tune
  status     print the stored proof state
  campaign   run a seeded batch campaign concurrently with the artifact cache
  cluster    shard a campaign across spawned worker daemons with failover
  serve      run the covern-protocol-v1 verification daemon (stdio or TCP)
  loadgen    drive concurrent sessions through a daemon; measure latency
  help       print this reference (or one command's section)

verify — original verification
  --network F   network JSON file (bit-exact covern-nn format)   [required]
  --din F       input domain: JSON [[lo,hi],…]                   [required]
  --dout F      safety set: JSON [[lo,hi],…]                     [required]
  --store F     artifact store path            [default: covern-state.json]
  --margin REL  relative artifact buffer (e.g. 0.05)          [default: 0.0]
  --splits N    bisection budget for local checks              [default: 64]
  --kernel-mode M  affine-kernel family: deterministic (fixed-lane-order,
                bit-identical canonical reports) or outward (unrolled,
                cache-blocked fast kernels, every interval soundly
                widened outward)                  [default: deterministic]

verify-loop — closed-loop reach-tube verification (controller + plant)
  --case C      built-in lane-keeping workload: safe (stabilizing feedback,
                proved) or unsafe (flipped feedback sign, refuted with a
                replayable witness); overrides --spec/--controller
  --spec F      closed-loop spec JSON: plant, initial set, unsafe region,
                horizon, generator cap, sample budget [required unless --case]
  --controller F  controller network JSON (bit-exact covern-nn format)
                [required unless --case]
  --domain D    abstract domain: box | symbolic | zonotope — only zonotope
                carries the x–u feedback correlation through the plant
                step; box/symbolic soundly widen     [default: zonotope]
  --out F       write the closed-loop report JSON   [default: print to stdout]
  --canonical   zero wall time and reuse counters (byte-deterministic report)
  --kernel-mode M  deterministic | outward (see verify) [default: deterministic]

enlarge — domain-enlargement delta (SVuDC)
  --din F       the enlarged input domain                        [required]
  --store F     artifact store path            [default: covern-state.json]
  --splits N    bisection budget for local checks              [default: 64]
  --refine-strategy S  local-check engine: widest | slack | refine |
                       portfolio | milp (B&B frontier heuristics, plain
                       bisection-refined symbolic analysis — the campaign
                       default — the refiner-vs-MILP race, or pure exact
                       MILP)                             [default: widest]
  --deadline-ms N      anytime wall-clock budget per local check; on
                       expiry the check answers unknown (the milp
                       strategy is bounded by its node budget instead
                       and ignores this flag)            [default: none]

update — model-update delta (SVbTV)
  --network F   the fine-tuned network                           [required]
  --din F       optionally enlarge the domain in the same event
  --store F     artifact store path            [default: covern-state.json]
  --splits N    bisection budget for local checks              [default: 64]
  --refine-strategy S  local-check engine (see enlarge) [default: widest]
  --deadline-ms N      anytime deadline per local check [default: none]

status — inspect the stored proof state
  --store F     artifact store path            [default: covern-state.json]

campaign — concurrent batch verification
  --scenarios N   synthetic scenarios to generate               [default: 20]
  --families N    distinct base models (fine-tune families)      [default: 5]
  --events N      delta events per scenario                      [default: 3]
  --seed N        corpus master seed                            [default: 42]
  --threads N     scenario worker count                           [default: 4]
  --out F         write the JSON report here        [default: print to stdout]
  --canonical     zero all timing fields (byte-deterministic report)
  --vehicle       append the lane-following platform workload
  --closed-loop   append the closed-loop lane-keeping scenarios (reach tubes
                  through controller + plant, warmed by the tube cache)
  --no-cache      disable the content-addressed artifact cache
  --no-proof-reuse  keep the cache but drop its proof-level entries
                  (B&B checkpoints that warm-start post-delta refinement)
  --min-hits N    fail unless the cache reused ≥ N artifacts     [default: 0]
  --cluster N     shard across N spawned worker daemons instead of running
                  in-process (see the cluster command)          [default: 0]
  --kernel-mode M deterministic | outward (see verify) [default: deterministic]

cluster — sharded multi-worker campaign with failover
  --workers N     worker daemons to spawn (covern_cli serve)      [default: 2]
  --scenarios N   synthetic scenarios to generate               [default: 20]
  --families N    distinct base models (fine-tune families)      [default: 5]
  --events N      delta events per scenario                      [default: 3]
  --seed N        corpus master seed                            [default: 42]
  --threads N     campaign thread budget (report header + drivers) [default: 4]
  --deadline-ms N per-request reply deadline; a worker that blows it is
                  retired and its sessions reassigned     [default: 30000]
  --ping-ms N     worker health-check interval               [default: 1000]
  --store-dir D   checkpoint/spill directory  [default: temp, removed on exit]
  --kill-after N  fault drill: SIGKILL worker 0 after the Nth verdict; the
                  campaign must still finish with an identical canonical
                  report                                 [default: disabled]
  --respawn-budget N  replacement daemons the health monitor may launch for
                  dead spawned workers (0 disables auto-respawn) [default: 2]
  --out F         write the JSON report here        [default: print to stdout]
  --canonical     zero all timing fields (byte-deterministic report)

serve — the verification daemon (covern-protocol-v1, see docs/PROTOCOL.md)
  --stdio              serve stdin/stdout                          [default]
  --tcp ADDR           serve TCP on ADDR (e.g. 127.0.0.1:7071; port 0 picks)
  --metrics-http ADDR  also serve GET /metrics (Prometheus text) on ADDR
                       (see docs/OPERATIONS.md)          [default: disabled]
  --workers N          drain-task worker pool size  [default: machine cores]
  --session-threads N  per-session verifier thread budget        [default: 1]
  --inbox N            per-session bounded-inbox capacity       [default: 32]
  --splits N           bisection budget for local checks        [default: 256]
  --refine-strategy S  local-check engine (see enlarge) [default: widest]
  --deadline-ms N      anytime deadline per local check [default: none]
  --kernel-mode M      deterministic | outward (see verify)
                       [default: deterministic]

loadgen — concurrent-session load generator (report: covern-loadgen-report-v1)
  --addr ADDR     drive a daemon already listening on ADDR
  --spawn         spawn an in-process daemon on a loopback port instead
  --sessions N    concurrent sessions (one corpus scenario each) [default: 50]
  --connections N client connections (threads)                    [default: 8]
  --events N      ordered delta events per session                [default: 3]
  --families N    distinct base-model families                    [default: 5]
  --burst N       pipelined idempotent deltas per session          [default: 4]
  --qps N         sustained arrival rate: pace session starts at N per
                  second (open/close churn) instead of all-at-once
                  [default: 0 = unpaced]
  --inbox N       (--spawn only) per-session inbox capacity       [default: 32]
  --workers N     (--spawn only) drain-task pool size  [default: machine cores]
  --seed N        corpus master seed                            [default: 2021]
  --out F         write the JSON report here        [default: print to stdout]
  --canonical     zero timing/contention fields (seed-deterministic report)

exit codes: 0 property proved / clean shutdown / loadgen passed;
            2 unknown or refuted / loadgen failed its bar;
            1 usage, I/O, or protocol error
";

#[test]
fn help_output_matches_snapshot() {
    let out = cli(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim_end(), HELP_SNAPSHOT.trim_end(), "help drifted — update both sides");
}

#[test]
fn per_command_help_prints_that_section() {
    for cmd in [
        "verify",
        "verify-loop",
        "enlarge",
        "update",
        "status",
        "campaign",
        "cluster",
        "serve",
        "loadgen",
    ] {
        let out = cli(&["help", cmd]);
        assert!(out.status.success(), "help {cmd} failed");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(
            stdout.starts_with(&format!("{cmd} — ")),
            "help {cmd} must lead with its own section, got: {stdout}"
        );
        // `--help` after the command prints the same section.
        let via_flag = cli(&[cmd, "--help"]);
        assert!(via_flag.status.success(), "{cmd} --help failed");
        assert_eq!(String::from_utf8(via_flag.stdout).unwrap(), stdout);
    }
}

#[test]
fn every_documented_flag_has_its_section_and_no_stray_commands() {
    // The flags each subcommand's parser consults, mirrored from
    // src/bin/covern_cli.rs. If a match arm grows a `flags.get("x")`, this
    // list — and the HELP text — must grow with it.
    let audited: &[(&str, &[&str])] = &[
        ("verify", &["network", "din", "dout", "store", "margin", "splits", "kernel-mode"]),
        (
            "verify-loop",
            &["case", "spec", "controller", "domain", "out", "canonical", "kernel-mode"],
        ),
        ("enlarge", &["din", "store", "splits", "refine-strategy", "deadline-ms"]),
        ("update", &["network", "din", "store", "splits", "refine-strategy", "deadline-ms"]),
        ("status", &["store"]),
        (
            "campaign",
            &[
                "scenarios",
                "families",
                "events",
                "seed",
                "threads",
                "out",
                "canonical",
                "vehicle",
                "closed-loop",
                "no-cache",
                "no-proof-reuse",
                "min-hits",
                "cluster",
                "kernel-mode",
            ],
        ),
        (
            "cluster",
            &[
                "workers",
                "scenarios",
                "families",
                "events",
                "seed",
                "threads",
                "deadline-ms",
                "ping-ms",
                "store-dir",
                "kill-after",
                "respawn-budget",
                "out",
                "canonical",
            ],
        ),
        (
            "serve",
            &[
                "stdio",
                "tcp",
                "metrics-http",
                "workers",
                "session-threads",
                "inbox",
                "splits",
                "refine-strategy",
                "deadline-ms",
                "kernel-mode",
            ],
        ),
        (
            "loadgen",
            &[
                "addr",
                "spawn",
                "sessions",
                "connections",
                "events",
                "families",
                "burst",
                "qps",
                "inbox",
                "workers",
                "seed",
                "out",
                "canonical",
            ],
        ),
    ];
    for (cmd, flags) in audited {
        let out = cli(&["help", cmd]);
        let section = String::from_utf8(out.stdout).unwrap();
        for flag in *flags {
            assert!(
                section.contains(&format!("--{flag}")),
                "help for {cmd} is missing documented flag --{flag}:\n{section}"
            );
        }
    }
}

#[test]
fn help_help_prints_the_full_reference() {
    // `help` is listed in the commands table, so asking for its section
    // must succeed (it prints the whole reference, not an error).
    let out = cli(&["help", "help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim_end(), HELP_SNAPSHOT.trim_end());
}

#[test]
fn unknown_help_topic_is_an_error() {
    let out = cli(&["help", "explode"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"), "stderr: {stderr}");
}
