//! Property-based soundness and schedule-independence suite for the
//! parallel branch-and-bound refiner (`absint::bnb`).
//!
//! The invariants, each over 64+ seeded random networks (proptest shim:
//! seeds derive from the test name, so failures reproduce exactly):
//!
//! * the parallel B&B verdict is **identical** to the sequential
//!   `refine::prove_forward_containment` verdict — not just the
//!   proved/refuted classification but the whole outcome, witness bytes
//!   included (the sequential path *is* the engine at one thread, and
//!   the wave design makes the expansion schedule-independent);
//! * `Proved` never coexists with a concrete violating sample;
//! * every `Refuted` witness re-executes concretely to a real violation;
//! * both frontier heuristics are sound.

use covern::absint::bnb::{decide, BnbConfig, SplitStrategy};
use covern::absint::refine::{prove_forward_containment, Outcome};
use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::nn::{Activation, Network};
use covern::tensor::Rng;
use proptest::prelude::*;

fn case_net(seed: u64) -> Network {
    let dims: &[usize] = match seed % 3 {
        0 => &[2, 5, 1],
        1 => &[3, 6, 4, 1],
        _ => &[2, 4, 4, 2],
    };
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9).wrapping_add(11));
    Network::random(dims, Activation::Relu, Activation::Identity, &mut rng)
}

fn unit_box(dim: usize) -> BoxDomain {
    BoxDomain::from_bounds(&vec![(-1.0, 1.0); dim]).expect("unit box")
}

/// A target sweeping from clearly violated to provable: the single-pass
/// box reach hull shrunk around its center by `shrink` per dimension.
fn swept_target(net: &Network, din: &BoxDomain, shrink: f64) -> BoxDomain {
    let out = reach_boxes(net, din, DomainKind::Box).expect("reach").output().clone();
    let bounds: Vec<(f64, f64)> = (0..out.dim())
        .map(|i| {
            let iv = out.interval(i);
            let c = iv.center();
            let hw = (0.5 * iv.width() * shrink).max(1e-6);
            (c - hw, c + hw)
        })
        .collect();
    BoxDomain::from_bounds(&bounds).expect("target box")
}

fn sample_in(b: &BoxDomain, rng: &mut Rng) -> Vec<f64> {
    b.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_verdict_equals_sequential_refine(
        seed in 0u64..100_000,
        shrink in 0.2f64..1.2,
        threads in 2usize..8,
    ) {
        let net = case_net(seed);
        let din = unit_box(net.input_dim());
        let target = swept_target(&net, &din, shrink);
        let budget = 200;
        let sequential =
            prove_forward_containment(&net, &din, &target, DomainKind::Symbolic, budget)
                .expect("sequential refine runs");
        let config = BnbConfig::new(DomainKind::Symbolic, budget).with_threads(threads);
        let parallel = decide(&net, &din, &target, &config).expect("parallel bnb runs");
        // Full outcome equality: classification AND witness bytes.
        prop_assert!(
            sequential == parallel.outcome,
            "seed {}: {} threads diverged from the sequential path: {:?} vs {:?}",
            seed, threads, sequential, parallel.outcome
        );
    }

    #[test]
    fn proved_never_coexists_with_violating_sample(
        seed in 0u64..100_000,
        shrink in 0.2f64..1.2,
    ) {
        let net = case_net(seed.wrapping_add(1_000_000));
        let din = unit_box(net.input_dim());
        let target = swept_target(&net, &din, shrink);
        let config = BnbConfig::new(DomainKind::Symbolic, 300).with_threads(4);
        let report = decide(&net, &din, &target, &config).expect("bnb runs");
        if matches!(report.outcome, Outcome::Proved) {
            let mut rng = Rng::seeded(seed ^ 0xabcd);
            for _ in 0..100 {
                let x = sample_in(&din, &mut rng);
                let y = net.forward(&x).expect("forward");
                prop_assert!(
                    target.dilate(1e-9).contains(&y),
                    "seed {}: Proved but sample {:?} -> {:?} violates", seed, x, y
                );
            }
        }
    }

    #[test]
    fn refuted_witness_replays_concretely(
        seed in 0u64..100_000,
        shrink in 0.1f64..0.9,
        slack_heuristic in proptest::bool::ANY,
    ) {
        let net = case_net(seed.wrapping_add(2_000_000));
        let din = unit_box(net.input_dim());
        let target = swept_target(&net, &din, shrink);
        let strategy =
            if slack_heuristic { SplitStrategy::OutputSlack } else { SplitStrategy::WidestDim };
        let config =
            BnbConfig::new(DomainKind::Symbolic, 300).with_strategy(strategy).with_threads(3);
        let report = decide(&net, &din, &target, &config).expect("bnb runs");
        if let Outcome::Refuted(w) = &report.outcome {
            prop_assert!(din.contains(w), "seed {}: witness escapes the input domain", seed);
            let y = net.forward(w).expect("forward");
            prop_assert!(
                !target.contains(&y),
                "seed {}: witness {:?} -> {:?} does not violate", seed, w, y
            );
        }
    }

    #[test]
    fn heuristics_agree_on_decisive_answers(
        seed in 0u64..100_000,
        shrink in 0.2f64..1.2,
    ) {
        // Different frontier orders may resolve different budgets, but two
        // sound engines can never be decisive AND contradictory.
        let net = case_net(seed.wrapping_add(3_000_000));
        let din = unit_box(net.input_dim());
        let target = swept_target(&net, &din, shrink);
        let base = BnbConfig::new(DomainKind::Symbolic, 300).with_threads(2);
        let widest = decide(&net, &din, &target, &base).expect("widest runs");
        let slack = decide(
            &net,
            &din,
            &target,
            &base.with_strategy(SplitStrategy::OutputSlack),
        )
        .expect("slack runs");
        let contradictory = matches!(
            (&widest.outcome, &slack.outcome),
            (Outcome::Proved, Outcome::Refuted(_)) | (Outcome::Refuted(_), Outcome::Proved)
        );
        prop_assert!(
            !contradictory,
            "seed {}: widest said {:?}, slack said {:?}", seed, widest.outcome, slack.outcome
        );
    }
}

/// The CI smoke gate: one pinned case, 2 workers vs 1 worker, verdicts
/// (and split accounting) byte-identical.
#[test]
fn two_thread_verdicts_equal_one_thread_smoke() {
    for seed in [5u64, 17, 40] {
        let net = case_net(seed);
        let din = unit_box(net.input_dim());
        for shrink in [0.3, 0.8, 1.1] {
            let target = swept_target(&net, &din, shrink);
            let base = BnbConfig::new(DomainKind::Symbolic, 250);
            let one = decide(&net, &din, &target, &base).expect("1-thread run");
            let two = decide(&net, &din, &target, &base.with_threads(2)).expect("2-thread run");
            assert_eq!(one.outcome, two.outcome, "seed {seed} shrink {shrink}: verdict diverged");
            assert_eq!(one.splits, two.splits, "seed {seed} shrink {shrink}: splits diverged");
            assert_eq!(one.leaves_proved, two.leaves_proved);
            assert_eq!(one.frontier_remaining, two.frontier_remaining);
        }
    }
}

/// Anytime behaviour: the deadline budget answers Unknown with partial
/// progress instead of hanging — and a generous budget then finishes the
/// same instance.
#[test]
fn deadline_is_anytime_not_wrong() {
    let net = case_net(7);
    let din = unit_box(net.input_dim());
    let target = swept_target(&net, &din, 1.05);
    let strangled = BnbConfig::new(DomainKind::Symbolic, 1_000_000)
        .with_deadline(Some(std::time::Duration::ZERO));
    let r = decide(&net, &din, &target, &strangled).expect("bnb runs");
    assert_eq!(r.outcome, Outcome::Unknown);
    assert!(r.deadline_hit, "a zero deadline must report deadline_hit");
    assert!(r.frontier_remaining >= 1, "partial progress must name the open boxes");
    let unhurried = BnbConfig::new(DomainKind::Symbolic, 100_000).with_threads(2);
    let r2 = decide(&net, &din, &target, &unhurried).expect("bnb runs");
    assert!(!matches!(r2.outcome, Outcome::Unknown) || r2.splits >= 100_000);
}
