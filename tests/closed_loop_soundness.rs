//! Property-based soundness of closed-loop reach-tube propagation.
//!
//! The invariant that makes a closed-loop `proved` trustworthy: for *any*
//! plant + controller + initial set, the abstract tube must contain every
//! concrete trajectory at **every step** — in all three domains. The box
//! and symbolic domains decorrelate state and control at the plant
//! boundary (the wrapping effect makes them diverge on feedback-stabilized
//! loops), but divergence is allowed to cost precision only, never
//! containment.
//!
//! The second half pins schedule-independence: a campaign over closed-loop
//! scenarios produces byte-identical canonical reports — verdicts and
//! witness bytes included — at 1 and 4 worker threads, in every domain.
//!
//! Seeds are pinned by construction (the proptest shim derives each
//! test's RNG from its name), so a failing case reproduces exactly.

use covern::absint::{BoxDomain, DomainKind};
use covern::campaign::{CampaignConfig, CampaignEngine, DeltaEvent, Scenario};
use covern::closedloop::{AffinePlant, ClosedLoopSpec, LoopVerifier};
use covern::core::artifact::Margin;
use covern::nn::{Activation, Network};
use covern::tensor::{Matrix, Rng};
use covern::vehicle::lateral;
use proptest::prelude::*;
use proptest::test_runner::Config;
use proptest::TestCaseError;

/// Trajectories sampled per tube-containment check (the suite's floor).
const TRAJECTORIES: usize = 100;

/// Output activations cycled by seed. Sigmoid/Tanh break zonotope
/// noise-symbol alignment at the plant boundary, exercising the
/// block-diagonal fallback; the piecewise-linear ones keep it.
const OUT_ACTS: [Activation; 4] =
    [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh];

/// A seeded closed-loop case: an open-loop-stable random plant (so the
/// decorrelated domains stay finite over the horizon) driven by a random
/// small controller, with an initial box near the origin and an unsafe
/// region whose placement varies from disjoint to overlapping.
fn seeded_case(seed: u64) -> (ClosedLoopSpec, Network) {
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = 1 + (seed % 3) as usize;
    let a =
        Matrix::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    rng.uniform(-0.7, 0.7)
                } else {
                    rng.uniform(-0.1, 0.1)
                }
            },
        );
    let b = Matrix::from_fn(n, 1, |_, _| rng.uniform(-0.4, 0.4));
    let c: Vec<f64> = (0..n).map(|_| rng.uniform(-0.05, 0.05)).collect();
    let plant = AffinePlant::new(&a, &b, &c).expect("square stable plant");
    let out = OUT_ACTS[((seed / 5) % OUT_ACTS.len() as u64) as usize];
    let controller = Network::random(&[n, 4, 1], Activation::Relu, out, &mut rng);
    let init_bounds: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let c0 = rng.uniform(-0.3, 0.3);
            (c0 - 0.25, c0 + 0.25)
        })
        .collect();
    let shift = rng.uniform(0.0, 2.0);
    let unsafe_bounds: Vec<(f64, f64)> = (0..n).map(|_| (shift, shift + 1.0)).collect();
    let spec = ClosedLoopSpec {
        plant,
        init: BoxDomain::from_bounds(&init_bounds).expect("ordered bounds"),
        unsafe_region: BoxDomain::from_bounds(&unsafe_bounds).expect("ordered bounds"),
        horizon: 6,
        max_generators: 12,
        sample_limit: 16,
    };
    (spec, controller)
}

/// Simulates `TRAJECTORIES` random initial states through the loop and
/// asserts the tube's recorded step boxes contain each trajectory at
/// every step, 0 through horizon.
fn assert_tube_contains_trajectories(
    verifier: &LoopVerifier,
    seed: u64,
    who: &str,
) -> Result<(), TestCaseError> {
    let report = verifier.verify().map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(
        report.steps.len() as u64,
        report.horizon + 1,
        "{}: tube is missing steps",
        who
    );
    let init = &verifier.spec().init;
    let mut rng = Rng::seeded(seed ^ 0xdead_beef);
    for t in 0..TRAJECTORIES {
        let x0: Vec<f64> =
            init.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect();
        let trajectory = verifier.simulate(&x0).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(trajectory.len(), report.steps.len(), "{}: trajectory length", who);
        for (k, x) in trajectory.iter().enumerate() {
            prop_assert!(
                report.steps[k].state.contains(x),
                "{}: trajectory {} escaped the tube at step {} (x = {:?}, box = {:?})",
                who,
                t,
                k,
                x,
                report.steps[k].state
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(Config::with_cases(24))]

    /// Tube containment on seeded random loops, all three domains.
    #[test]
    fn prop_tube_contains_trajectories_in_every_domain(seed in 0u64..10_000) {
        let (spec, controller) = seeded_case(seed);
        for kind in DomainKind::ALL {
            let verifier = LoopVerifier::new(spec.clone(), controller.clone(), kind)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            assert_tube_contains_trajectories(&verifier, seed, &kind.to_string())?;
        }
    }
}

/// The lane-keeping workload: both vehicle cases, all three domains,
/// `TRAJECTORIES` simulated trajectories inside the tube at every step.
#[test]
fn vehicle_tubes_contain_trajectories_in_every_domain() {
    for (case, name) in [(lateral::safe_case(), "safe"), (lateral::unsafe_case(), "unsafe")] {
        for kind in DomainKind::ALL {
            let verifier = LoopVerifier::new(case.spec.clone(), case.controller.clone(), kind)
                .expect("vehicle case validates");
            assert_tube_contains_trajectories(&verifier, 0x7665_6869, &format!("{name}/{kind}"))
                .unwrap_or_else(|e| panic!("vehicle {name}/{kind}: {e:?}"));
        }
    }
}

/// One closed-loop scenario per domain over the vehicle cases, with a
/// delta stream that flips the verdict both ways.
fn closed_loop_corpus() -> Vec<Scenario> {
    let safe = lateral::safe_case();
    let unsafe_ = lateral::unsafe_case();
    let mut corpus = Vec::new();
    for kind in DomainKind::ALL {
        corpus.push(Scenario {
            name: format!("loop-safe-{kind}"),
            network: safe.controller.clone(),
            din: safe.spec.init.clone(),
            dout: safe.spec.unsafe_region.clone(),
            domain: kind,
            margin: Margin::NONE,
            closed_loop: Some(safe.spec.clone()),
            events: vec![
                DeltaEvent::DomainEnlarged(safe.spec.init.dilate(0.01)),
                DeltaEvent::ModelUpdated(unsafe_.controller.clone()),
            ],
        });
        corpus.push(Scenario {
            name: format!("loop-unsafe-{kind}"),
            network: unsafe_.controller.clone(),
            din: unsafe_.spec.init.clone(),
            dout: unsafe_.spec.unsafe_region.clone(),
            domain: kind,
            margin: Margin::NONE,
            closed_loop: Some(unsafe_.spec.clone()),
            events: vec![DeltaEvent::ModelUpdated(safe.controller.clone())],
        });
    }
    corpus
}

/// Closed-loop campaign verdicts — witness bytes included — are
/// independent of the worker-thread count: 1 and 4 threads produce
/// byte-identical canonical reports, in every domain.
#[test]
fn closed_loop_campaign_is_thread_count_independent() {
    let corpus = closed_loop_corpus();
    let serial = CampaignEngine::new(CampaignConfig { threads: 1, ..CampaignConfig::default() })
        .run(&corpus)
        .expect("serial campaign runs");
    let wide = CampaignEngine::new(CampaignConfig { threads: 4, ..CampaignConfig::default() })
        .run(&corpus)
        .expect("4-thread campaign runs");
    for (s, w) in serial.scenarios.iter().zip(&wide.scenarios) {
        assert_eq!(s.name, w.name, "scenario order changed with thread count");
        assert_eq!(s.initial_outcome, w.initial_outcome, "{}: initial verdict", s.name);
        assert_eq!(s.error, w.error, "{}: error state", s.name);
        assert_eq!(s.events.len(), w.events.len(), "{}: event count", s.name);
        for (i, (se, we)) in s.events.iter().zip(&w.events).enumerate() {
            assert_eq!(se.outcome, we.outcome, "{}: event {i} verdict", s.name);
            assert_eq!(se.witness, we.witness, "{}: event {i} witness bytes", s.name);
        }
    }
    // The zonotope unsafe case must actually refute with a witness, so the
    // witness-byte comparison above is not vacuous.
    let refuting = serial
        .scenarios
        .iter()
        .find(|s| s.name == "loop-unsafe-zonotope")
        .expect("zonotope unsafe scenario present");
    assert_eq!(refuting.initial_outcome, "refuted", "unsafe vehicle case must refute");
    // The canonical report records the *configured* thread count (so
    // cluster comparisons can insist on matching configs); align that one
    // field before insisting every other byte — witnesses included — is
    // identical.
    let mut wide = wide.canonical();
    wide.threads = serial.threads;
    assert_eq!(
        serial.canonical_json().expect("serial serializes"),
        wide.canonical_json().expect("wide serializes"),
        "canonical closed-loop campaign report depends on the thread count"
    );
}
