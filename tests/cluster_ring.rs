//! Property suite for the cluster's consistent-hash ring
//! (`covern::service::cluster::ring`).
//!
//! The properties that make consistent hashing the right placement
//! structure for the verification cluster, each over proptest-seeded
//! key populations:
//!
//! * **minimal disruption** — growing an `n`-worker ring to `n + 1`
//!   remaps roughly `1/(n+1)` of the key space, every remapped key lands
//!   on the *new* worker, and removing that worker restores the original
//!   placement exactly (so a worker death only spreads the dead worker's
//!   keys, it never reshuffles survivors);
//! * **family co-location** — corpus scenarios with equal
//!   `proof_family_key`s (fine-tune siblings sharing a base model) route
//!   to the same worker, the invariant that keeps artifact dedupe and
//!   branch-and-bound warm starts cache-local;
//! * **purity** — routing is a function of `(ring, key)` alone: rebuilt
//!   rings agree point-for-point, and failover routing with everyone
//!   alive equals plain routing.

use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::proof_family_key;
use covern::core::problem::VerificationProblem;
use covern::service::cluster::ring::VNODES;
use covern::service::HashRing;
use proptest::prelude::*;

/// A deterministic pseudo-random key population: distinct, well spread,
/// reproducible from the proptest-drawn seed.
fn keys(seed: u64, count: usize) -> Vec<u128> {
    (0..count as u128)
        .map(|i| {
            let lo = (seed as u128 ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let hi = (seed as u128).wrapping_add(i.wrapping_mul(0x517c_c1b7_2722_0a95));
            (hi << 64) | (lo & u128::from(u64::MAX))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn growing_the_ring_remaps_about_one_nth_onto_the_new_worker(
        seed in 0u64..100_000,
        n in 1usize..9,
    ) {
        let small = HashRing::with_workers(n);
        let grown = HashRing::with_workers(n + 1);
        let population = keys(seed, 2000);

        let mut moved = 0usize;
        for &key in &population {
            let before = small.route(key).unwrap();
            let after = grown.route(key).unwrap();
            if before != after {
                moved += 1;
                // Consistent hashing's defining property: a remapped key
                // may only move TO the newcomer, never between veterans.
                prop_assert_eq!(
                    after, n,
                    "key moved between surviving workers ({} -> {})", before, after
                );
            }
        }
        // Expected share is 1/(n+1); with 64 vnodes per worker the
        // realised share stays well inside [0, 2.5/(n+1)].
        let ceiling = (2000.0 * 2.5 / (n as f64 + 1.0)).ceil() as usize;
        prop_assert!(
            moved <= ceiling,
            "adding 1 worker to {} moved {}/2000 keys (ceiling {})", n, moved, ceiling
        );
        prop_assert!(moved > 0, "the new worker took over nothing");
    }

    #[test]
    fn removing_a_worker_only_disturbs_its_own_keys(
        seed in 0u64..100_000,
        n in 2usize..9,
        victim_raw in 0usize..9,
    ) {
        let victim = victim_raw % n;
        let full = HashRing::with_workers(n);
        let mut shrunk = HashRing::with_workers(n);
        shrunk.remove(victim);
        prop_assert_eq!(shrunk.workers(), n - 1);

        for &key in &keys(seed, 1500) {
            let before = full.route(key).unwrap();
            let after = shrunk.route(key).unwrap();
            if before == victim {
                prop_assert!(after != victim, "key still routes to the removed worker");
                // Removal and liveness-failover agree: the arc falls
                // through to the same survivor either way.
                prop_assert_eq!(full.route_live(key, |w| w != victim), Some(after));
            } else {
                prop_assert_eq!(after, before, "a survivor's key was reshuffled");
            }
        }
    }

    #[test]
    fn routing_is_pure_and_failover_with_all_alive_is_identity(
        seed in 0u64..100_000,
        n in 1usize..7,
    ) {
        let ring = HashRing::with_workers(n);
        let rebuilt = HashRing::with_workers(n);
        for &key in &keys(seed, 600) {
            let owner = ring.route(key);
            prop_assert!(owner.is_some());
            prop_assert_eq!(rebuilt.route(key), owner, "rebuilt ring disagrees");
            prop_assert_eq!(ring.route_live(key, |_| true), owner);
            prop_assert_eq!(ring.route(key), owner, "routing mutated state");
        }
    }

    #[test]
    fn fine_tune_siblings_with_equal_family_keys_colocate(
        seed in 0u64..100_000,
        workers in 2usize..6,
    ) {
        // A corpus with more scenarios than families forces key sharing:
        // scenarios in one family fine-tune the same base network.
        let corpus = generate(&CorpusConfig {
            scenarios: 12,
            families: 3,
            events_per_scenario: 1,
            seed,
            include_vehicle: false,
            include_closed_loop: false,
        })
        .unwrap();
        let ring = HashRing::with_workers(workers);

        let mut placements: Vec<(u128, usize)> = Vec::new();
        for scenario in &corpus {
            let problem = VerificationProblem::new(
                scenario.network.clone(),
                scenario.din.clone(),
                scenario.dout.clone(),
            )
            .unwrap();
            let key = proof_family_key(&problem, scenario.domain, scenario.margin).to_u128();
            placements.push((key, ring.route(key).unwrap()));
        }
        // Every pair agreeing on the key agrees on the worker — and the
        // corpus really exercises the property (some pair shares a key).
        let mut shared = false;
        for (i, &(ka, wa)) in placements.iter().enumerate() {
            for &(kb, wb) in &placements[i + 1..] {
                if ka == kb {
                    shared = true;
                    prop_assert_eq!(wa, wb, "family siblings split across workers");
                }
            }
        }
        prop_assert!(shared, "corpus generated no shared family keys");
    }
}

#[test]
fn vnode_count_keeps_small_cluster_shares_near_uniform() {
    // Not a proptest: one deterministic sanity check that the VNODES
    // constant actually buys the spread the module docs promise.
    const { assert!(VNODES >= 32, "too few virtual nodes for a usable spread") };
    let ring = HashRing::with_workers(4);
    let mut counts = [0usize; 4];
    for &key in &keys(7, 8000) {
        counts[ring.route(key).unwrap()] += 1;
    }
    for (w, &c) in counts.iter().enumerate() {
        assert!((1000..=3000).contains(&c), "worker {w} owns {c}/8000 keys — spread degenerated");
    }
}
