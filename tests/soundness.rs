//! Property-based soundness tests spanning the whole stack.
//!
//! The single invariant everything hangs on: **whenever any component says
//! `Proved`, no concrete execution may contradict it.** These tests
//! generate random networks, domains and perturbations, and fire samples
//! at every positive verdict.

use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::core::artifact::{Margin, StateAbstractionArtifact};
use covern::core::method::LocalMethod;
use covern::core::prop_domain::{prop1, prop3};
use covern::core::prop_model::prop4;
use covern::lipschitz::{global_lipschitz, NormKind};
use covern::nn::{Activation, Network};
use covern::tensor::Rng;
use proptest::prelude::*;

fn random_net(seed: u64, dims: &[usize]) -> Network {
    let mut rng = Rng::seeded(seed);
    Network::random(dims, Activation::Relu, Activation::Identity, &mut rng)
}

fn sample_in(b: &BoxDomain, rng: &mut Rng) -> Vec<f64> {
    b.intervals()
        .iter()
        .map(|iv| if iv.width() > 0.0 { rng.uniform(iv.lo(), iv.hi()) } else { iv.lo() })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop1_proved_implies_samples_safe(seed in 0u64..500, grow in 0.0f64..0.2) {
        let net = random_net(seed, &[3, 6, 4, 1]);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).unwrap();
        let dout = reach_boxes(&net, &din, DomainKind::Box).unwrap().output().dilate(1.0);
        let artifact = StateAbstractionArtifact::build(&net, &din, &dout, DomainKind::Box).unwrap();
        prop_assume!(artifact.proof_established());
        let enlarged = din.dilate(grow);
        let report = prop1(&net, &artifact, &enlarged,
            &LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: 64 }).unwrap();
        if report.outcome.is_proved() {
            let mut rng = Rng::seeded(seed + 9999);
            let padded = dout.dilate(1e-6);
            for _ in 0..100 {
                let x = sample_in(&enlarged, &mut rng);
                let y = net.forward(&x).unwrap();
                prop_assert!(padded.contains(&y), "prop1 proof contradicted at {x:?} -> {y:?}");
            }
        }
    }

    #[test]
    fn prop3_proved_implies_samples_safe(seed in 0u64..500, grow in 0.0f64..0.1) {
        let net = random_net(seed.wrapping_add(1000), &[2, 5, 1]);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 2]).unwrap();
        let dout = reach_boxes(&net, &din, DomainKind::Box).unwrap().output().dilate(2.0);
        let artifact = StateAbstractionArtifact::build(&net, &din, &dout, DomainKind::Box).unwrap();
        prop_assume!(artifact.proof_established());
        let ell = global_lipschitz(&net, NormKind::L2);
        let enlarged = din.dilate(grow);
        let report = prop3(&artifact, &ell, &enlarged, &dout).unwrap();
        if report.outcome.is_proved() {
            let mut rng = Rng::seeded(seed + 555);
            let padded = dout.dilate(1e-6);
            for _ in 0..100 {
                let x = sample_in(&enlarged, &mut rng);
                let y = net.forward(&x).unwrap();
                prop_assert!(padded.contains(&y), "prop3 proof contradicted");
            }
        }
    }

    #[test]
    fn prop4_proved_implies_samples_safe(seed in 0u64..500, eps in 0.0f64..1e-3) {
        let net = random_net(seed.wrapping_add(2000), &[3, 8, 5, 1]);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).unwrap();
        let dout = reach_boxes(&net, &din, DomainKind::Box).unwrap().output().dilate(2.0);
        let artifact = StateAbstractionArtifact::build_with_margin(
            &net, &din, &dout, DomainKind::Box, Margin::standard()).unwrap();
        prop_assume!(artifact.proof_established());
        let mut rng = Rng::seeded(seed + 777);
        let tuned = net.perturbed(eps, &mut rng);
        let report = prop4(&tuned, &artifact, &din,
            &LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: 8 }, 2).unwrap();
        if report.outcome.is_proved() {
            let padded = dout.dilate(1e-6);
            for _ in 0..100 {
                let x = sample_in(&din, &mut rng);
                let y = tuned.forward(&x).unwrap();
                prop_assert!(padded.contains(&y), "prop4 proof contradicted");
            }
        }
    }

    #[test]
    fn milp_exact_bounds_bracket_samples(seed in 0u64..500) {
        let net = random_net(seed.wrapping_add(3000), &[2, 5, 1]);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 2]).unwrap();
        let max = covern::milp::query::max_output_neuron(&net, &din, 0).unwrap();
        let min = covern::milp::query::min_output_neuron(&net, &din, 0).unwrap();
        let mut rng = Rng::seeded(seed + 31);
        for _ in 0..100 {
            let x = sample_in(&din, &mut rng);
            let y = net.forward(&x).unwrap()[0];
            prop_assert!(y <= max + 1e-6 && y >= min - 1e-6,
                "sample {y} escapes exact bounds [{min}, {max}]");
        }
    }

    #[test]
    fn artifact_boxes_contain_all_traces(seed in 0u64..500, margin_rel in 0.0f64..0.1) {
        let net = random_net(seed.wrapping_add(4000), &[3, 6, 4, 1]);
        let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).unwrap();
        let dout = BoxDomain::from_bounds(&[(f64::NEG_INFINITY, f64::INFINITY)]).unwrap();
        let artifact = StateAbstractionArtifact::build_with_margin(
            &net, &din, &dout, DomainKind::Box,
            Margin { rel: margin_rel, abs: 0.0 }).unwrap();
        let mut rng = Rng::seeded(seed + 13);
        for _ in 0..50 {
            let x = sample_in(&din, &mut rng);
            let trace = net.forward_trace(&x).unwrap();
            for (k, vals) in trace.iter().enumerate() {
                prop_assert!(
                    artifact.layers().layer_box(k + 1).unwrap().dilate(1e-9).contains(vals),
                    "trace escapes stored S{} (margin {margin_rel})", k + 1
                );
            }
        }
    }
}
