//! Differential test: the portfolio local-check method (branch-and-bound
//! refiner racing exact MILP, `milp::bb::decide_threshold` underneath)
//! against pure MILP, on every scenario of a seeded campaign corpus.
//!
//! Invariants:
//!
//! * on every containment instance the corpus produces — each scenario's
//!   original problem plus the instance after every delta event — the
//!   portfolio and pure-MILP classifications agree whenever both are
//!   decisive (two sound engines cannot contradict);
//! * the portfolio is never *less* decisive than MILP on these instances
//!   (its MILP lane runs the same query, so a MILP-decidable instance is
//!   portfolio-decidable);
//! * every `Refuted` witness — from either method — re-executes
//!   concretely and actually violates the property.

use covern::absint::BoxDomain;
use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::scenario::{DeltaEvent, Scenario};
use covern::core::method::{check_local_containment_threads, LocalMethod};
use covern::core::report::VerifyOutcome;
use covern::milp::query::DEFAULT_NODE_LIMIT;
use covern::nn::Network;

fn portfolio(scenario: &Scenario) -> LocalMethod {
    LocalMethod::Portfolio {
        domain: scenario.domain,
        max_splits: 400,
        node_limit: DEFAULT_NODE_LIMIT,
        deadline_ms: None,
    }
}

const MILP: LocalMethod = LocalMethod::Milp { node_limit: DEFAULT_NODE_LIMIT };

/// Every containment instance a scenario's trajectory visits: the
/// original `(f, Din, Dout)` plus the instance after each delta.
fn instances(s: &Scenario) -> Vec<(Network, BoxDomain, BoxDomain)> {
    let mut net = s.network.clone();
    let mut din = s.din.clone();
    let mut dout = s.dout.clone();
    let mut out = vec![(net.clone(), din.clone(), dout.clone())];
    for ev in &s.events {
        match ev {
            DeltaEvent::DomainEnlarged(d) => din = d.clone(),
            DeltaEvent::ModelUpdated(n) => net = n.clone(),
            DeltaEvent::PropertyChanged(d) => dout = d.clone(),
        }
        out.push((net.clone(), din.clone(), dout.clone()));
    }
    out
}

fn check_witness(net: &Network, din: &BoxDomain, dout: &BoxDomain, w: &[f64], who: &str) {
    assert!(din.contains(w), "{who}: witness {w:?} escapes the input domain");
    let y = net.forward(w).expect("witness replays");
    assert!(!dout.contains(&y), "{who}: witness {w:?} -> {y:?} does not violate {dout}");
}

#[test]
fn portfolio_agrees_with_pure_milp_on_every_corpus_scenario() {
    let corpus = generate(&CorpusConfig {
        scenarios: 10,
        families: 4,
        events_per_scenario: 3,
        seed: 20_260_728,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .expect("corpus generates");
    let mut decisive = 0usize;
    let mut checked = 0usize;
    for scenario in &corpus {
        let pf = portfolio(scenario);
        for (net, din, dout) in instances(scenario) {
            checked += 1;
            let milp = check_local_containment_threads(&net, &din, &dout, &MILP, 1)
                .expect("pure MILP runs");
            let port =
                check_local_containment_threads(&net, &din, &dout, &pf, 2).expect("portfolio runs");
            if let VerifyOutcome::Refuted(w) = &milp {
                check_witness(&net, &din, &dout, w, &format!("{} milp", scenario.name));
            }
            if let VerifyOutcome::Refuted(w) = &port {
                check_witness(&net, &din, &dout, w, &format!("{} portfolio", scenario.name));
            }
            match (&milp, &port) {
                (VerifyOutcome::Proved, VerifyOutcome::Refuted(_))
                | (VerifyOutcome::Refuted(_), VerifyOutcome::Proved) => {
                    panic!(
                        "{}: portfolio contradicts exact MILP ({milp:?} vs {port:?})",
                        scenario.name
                    );
                }
                // The portfolio contains a MILP lane with the same node
                // budget: where MILP alone decides, the race must too.
                (VerifyOutcome::Proved | VerifyOutcome::Refuted(_), VerifyOutcome::Unknown) => {
                    panic!(
                        "{}: portfolio answered Unknown where pure MILP was decisive ({milp:?})",
                        scenario.name
                    );
                }
                _ => {}
            }
            if !matches!(milp, VerifyOutcome::Unknown) {
                decisive += 1;
            }
        }
    }
    // The corpus must actually exercise the agreement, not vacuously pass.
    assert!(checked >= 40, "corpus too small: {checked} instances");
    assert!(decisive * 2 >= checked, "too few decisive instances: {decisive}/{checked}");
}

#[test]
fn portfolio_verdicts_are_thread_and_rerun_stable() {
    // Classification stability across thread budgets and reruns: the race
    // decides *when* an engine answers, never *what* the answer is.
    let corpus = generate(&CorpusConfig {
        scenarios: 4,
        families: 2,
        events_per_scenario: 2,
        seed: 99_173,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .expect("corpus generates");
    let kind = |o: &VerifyOutcome| match o {
        VerifyOutcome::Proved => 0u8,
        VerifyOutcome::Refuted(_) => 1,
        VerifyOutcome::Unknown => 2,
    };
    for scenario in &corpus {
        let pf = portfolio(scenario);
        for (net, din, dout) in instances(scenario) {
            let base =
                check_local_containment_threads(&net, &din, &dout, &pf, 1).expect("portfolio runs");
            for threads in [2, 4] {
                for _rerun in 0..2 {
                    let again = check_local_containment_threads(&net, &din, &dout, &pf, threads)
                        .expect("portfolio runs");
                    assert_eq!(
                        kind(&base),
                        kind(&again),
                        "{}: classification flapped across schedules",
                        scenario.name
                    );
                }
            }
        }
    }
}
