//! Integration tests for the verification service over TCP.
//!
//! The acceptance scenario of the service: a daemon sustains concurrent
//! sessions from *different* clients, and the second session of a
//! shared-base fine-tune family is served its original verification from
//! the process-wide content-addressed cache (observable via `Stats`
//! counters). Plus the edge cases a resident daemon must survive:
//! malformed problems, stale session ids, stats monotonicity under
//! concurrent load, and shutdown that drains in-flight verifications.

use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::DeltaEvent;
use covern::service::client::{replay_corpus, Client};
use covern::service::dispatch::{Service, ServiceConfig};
use covern::service::protocol::{Command, DeltaParams, ErrorCode, OpenParams, Reply, SessionRef};
use covern::service::transport::serve_tcp;
use covern_absint::BoxDomain;

/// A two-scenario corpus in ONE fine-tune family: both scenarios share
/// the base network, `Din`, and `Dout` bit-for-bit, so their original
/// verifications have the same content address.
fn shared_base_corpus() -> Vec<covern::campaign::Scenario> {
    let corpus = generate(&CorpusConfig {
        scenarios: 2,
        families: 1,
        events_per_scenario: 3,
        seed: 77,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .unwrap();
    assert_eq!(
        covern::nn::serialize::content_hash(&corpus[0].network),
        covern::nn::serialize::content_hash(&corpus[1].network),
        "corpus invariant: one family shares its base model"
    );
    corpus
}

fn open_params(s: &covern::campaign::Scenario) -> OpenParams {
    OpenParams {
        label: s.name.clone(),
        network: s.network.clone(),
        din: s.din.clone(),
        dout: s.dout.clone(),
        domain: s.domain,
        margin: s.margin,
        closed_loop: s.closed_loop.clone(),
    }
}

#[test]
fn two_concurrent_clients_share_the_process_wide_cache() {
    let service = Service::new(ServiceConfig { workers: 4, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let corpus = shared_base_corpus();

    // Two clients on two connections, each opening one branch of the
    // family *concurrently*: single-flight means exactly one of the two
    // identical original verifications computes; the other is a hit.
    let sessions: Vec<(u64, Vec<DeltaEvent>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .iter()
            .map(|scenario| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let opened = client.open(open_params(scenario)).unwrap();
                    assert_eq!(opened.outcome, "proved", "{}", scenario.name);
                    (opened.session, scenario.events.clone())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(sessions.len(), 2);
    assert_ne!(sessions[0].0, sessions[1].0, "distinct sessions");

    let mut control = Client::connect(addr).unwrap();
    let stats = control.stats().unwrap();
    assert_eq!(stats.sessions_open, 2, "daemon sustains two concurrent sessions");
    assert!(
        stats.cache_hits >= 1,
        "the second session of a shared-base family must hit the cache: {stats:?}"
    );
    assert!(stats.cache_misses >= 1);

    // Both sessions absorb their delta streams concurrently.
    let deltas_expected: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .into_iter()
            .map(|(session, events)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut n = 0u64;
                    for (i, event) in events.into_iter().enumerate() {
                        let verdict = client.delta(session, event).unwrap();
                        assert_eq!(verdict.seq, i as u64, "verdicts arrive in order");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let stats = control.stats().unwrap();
    assert_eq!(stats.deltas_applied, deltas_expected);

    control.shutdown().unwrap();
    server.join();
}

#[test]
fn malformed_problem_and_unknown_session_over_the_wire() {
    let service = Service::new(ServiceConfig::default());
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Open with a Din arity that does not match the network input.
    let corpus = shared_base_corpus();
    let mut params = open_params(&corpus[0]);
    params.din = BoxDomain::from_bounds(&[(-1.0, 1.0)]).unwrap();
    let err = client.open(params).unwrap_err();
    let covern::service::ServiceError::Remote(info) = err else {
        panic!("expected a remote error, got {err:?}")
    };
    assert_eq!(info.code, ErrorCode::InvalidProblem);

    // Deltas to a session id that never existed, then to a closed one.
    let din = corpus[0].din.dilate(0.01);
    match client
        .request(Command::Delta(DeltaParams {
            session: 4242,
            delta: DeltaEvent::DomainEnlarged(din.clone()),
        }))
        .unwrap()
    {
        Reply::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    let opened = client.open(open_params(&corpus[0])).unwrap();
    let summary = client.close(opened.session).unwrap();
    assert_eq!(summary.deltas, 0);
    match client
        .request(Command::Delta(DeltaParams {
            session: opened.session,
            delta: DeltaEvent::DomainEnlarged(din),
        }))
        .unwrap()
    {
        Reply::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession, "closed ids are stale"),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    // The failed open registered nothing.
    assert_eq!(client.stats().unwrap().sessions_open, 0);

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn stats_are_monotone_under_two_concurrent_replaying_clients() {
    let service = Service::new(ServiceConfig { workers: 4, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    // Two corpora with distinct seeds: each client drives its own load.
    let make = |seed| {
        generate(&CorpusConfig {
            scenarios: 3,
            families: 1,
            events_per_scenario: 2,
            seed,
            include_vehicle: false,
            include_closed_loop: false,
        })
        .unwrap()
    };
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();

    std::thread::scope(|scope| {
        for seed in [11u64, 12] {
            let corpus = make(seed);
            let done = done_tx.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let outcome = replay_corpus(&mut client, &corpus).unwrap();
                assert_eq!(outcome.scenarios, 3);
                assert_eq!(outcome.deltas, 6);
                drop(done);
            });
        }
        drop(done_tx);
        // A third client polls stats concurrently: every counter must be
        // monotone (sessions_open may fluctuate; the rest never regress).
        let mut observer = Client::connect(addr).unwrap();
        let mut last = observer.stats().unwrap();
        loop {
            let now = observer.stats().unwrap();
            assert!(now.sessions_opened >= last.sessions_opened, "{last:?} -> {now:?}");
            assert!(now.deltas_applied >= last.deltas_applied, "{last:?} -> {now:?}");
            assert!(now.cache_hits >= last.cache_hits, "{last:?} -> {now:?}");
            assert!(now.cache_misses >= last.cache_misses, "{last:?} -> {now:?}");
            assert!(now.cache_entries >= last.cache_entries, "{last:?} -> {now:?}");
            last = now;
            match done_rx.recv_timeout(std::time::Duration::from_millis(5)) {
                // Both replay threads hung up: one more snapshot below.
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                _ => continue,
            }
        }
        let final_stats = observer.stats().unwrap();
        assert_eq!(final_stats.sessions_opened, 6);
        assert_eq!(final_stats.deltas_applied, 12);
        assert_eq!(final_stats.sessions_open, 0, "replay closes its sessions");
        // Within one family the 3 scenarios share one base instance:
        // ≥ 2 hits per corpus.
        assert!(final_stats.cache_hits >= 4, "{final_stats:?}");
        observer.shutdown().unwrap();
    });
    server.join();
}

#[test]
fn shutdown_drains_pipelined_deltas_before_acknowledging_on_the_wire() {
    let service = Service::new(ServiceConfig { workers: 2, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let corpus = shared_base_corpus();
    let opened = client.open(open_params(&corpus[0])).unwrap();

    // Pipeline every delta without waiting, then immediately ask for
    // shutdown: the daemon must finish the queued verifications first.
    let mut delta_ids = Vec::new();
    for event in &corpus[0].events {
        let id = client
            .send(Command::Delta(DeltaParams { session: opened.session, delta: event.clone() }))
            .unwrap();
        delta_ids.push(id);
    }
    let shutdown_id = client.send(Command::Shutdown).unwrap();

    // Collect responses in arrival order off the single connection.
    let mut arrivals = Vec::new();
    for _ in 0..delta_ids.len() + 1 {
        let response = client.recv().unwrap();
        arrivals.push(response);
    }
    let ack_pos = arrivals.iter().position(|r| r.id == shutdown_id).expect("shutdown acknowledged");
    assert_eq!(ack_pos, arrivals.len() - 1, "ack must come after every verdict");
    assert!(matches!(arrivals[ack_pos].reply, Reply::ShuttingDown));
    for id in delta_ids {
        let r = arrivals.iter().find(|r| r.id == id).expect("each delta answered");
        assert!(
            matches!(r.reply, Reply::Verdict(_)),
            "pipelined delta {id} must get its verdict, got {r:?}"
        );
    }
    server.join();
}

#[test]
fn checkpoint_travels_between_clients() {
    let service = Service::new(ServiceConfig::default());
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let corpus = shared_base_corpus();

    let mut first = Client::connect(addr).unwrap();
    let opened = first.open(open_params(&corpus[0])).unwrap();
    let enlarged = corpus[0].din.dilate(0.01);
    first.delta(opened.session, DeltaEvent::DomainEnlarged(enlarged.clone())).unwrap();
    let checkpoint = first.checkpoint(opened.session).unwrap();
    first.close(opened.session).unwrap();

    // A different client resumes the session and keeps verifying — no
    // re-verification of the original problem.
    let mut second = Client::connect(addr).unwrap();
    let resumed = second.resume("moved", checkpoint.state).unwrap();
    assert_eq!(resumed.outcome, "proved");
    assert_eq!(resumed.wall_us, 0, "resume must not re-verify");
    let verdict =
        second.delta(resumed.session, DeltaEvent::DomainEnlarged(enlarged.dilate(0.005))).unwrap();
    assert_eq!(verdict.record.outcome, "proved");

    // Stale ids from the closed first session do not alias the new one.
    match first.request(Command::Checkpoint(SessionRef { session: opened.session })).unwrap() {
        Reply::Error(e) => assert_eq!(e.code, ErrorCode::UnknownSession),
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    second.shutdown().unwrap();
    server.join();
}
