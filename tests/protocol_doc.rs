//! `docs/PROTOCOL.md` never drifts from the code: every JSON example in
//! the spec must parse against the real `covern-protocol-v1` serde
//! types. A fenced ```json block may hold several newline-delimited
//! messages (the wire form); each non-empty line must decode as either
//! a `Request` or a `Response`.

use covern::service::protocol::{decode, Request, Response};

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/PROTOCOL.md");
    std::fs::read_to_string(path).expect("docs/PROTOCOL.md exists")
}

/// Extracts the contents of every ```json fence.
fn json_blocks(text: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        match (&mut current, line.trim()) {
            (None, "```json") => current = Some(String::new()),
            (Some(_), "```") => blocks.push(current.take().expect("fence open")),
            (Some(block), _) => {
                block.push_str(line);
                block.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(current.is_none(), "unterminated ```json fence in docs/PROTOCOL.md");
    blocks
}

#[test]
fn every_doc_example_parses_against_the_real_types() {
    let text = doc();
    let blocks = json_blocks(&text);
    assert!(
        blocks.len() >= 15,
        "the spec should stay example-rich; found only {} json blocks",
        blocks.len()
    );
    let (mut requests, mut responses) = (0usize, 0usize);
    for (i, block) in blocks.iter().enumerate() {
        for line in block.lines().filter(|l| !l.trim().is_empty()) {
            let as_request = decode::<Request>(line);
            let as_response = decode::<Response>(line);
            match (as_request, as_response) {
                (Ok(req), Err(_)) => {
                    assert_eq!(req.v, covern::service::PROTOCOL_VERSION, "block {i}");
                    requests += 1;
                }
                (Err(_), Ok(resp)) => {
                    assert_eq!(resp.v, covern::service::PROTOCOL_VERSION, "block {i}");
                    responses += 1;
                }
                (Ok(_), Ok(_)) => panic!("block {i}: ambiguous example (both shapes): {line}"),
                (Err(req_err), Err(resp_err)) => panic!(
                    "block {i}: example parses as neither shape:\n  line: {line}\n  as \
                     Request: {req_err}\n  as Response: {resp_err}"
                ),
            }
        }
    }
    // The spec documents both directions of the wire.
    assert!(requests >= 8, "only {requests} request examples");
    assert!(responses >= 8, "only {responses} response examples");
}

#[test]
fn doc_mentions_every_error_code() {
    use covern::service::protocol::ErrorCode;
    let text = doc();
    for code in [
        ErrorCode::MalformedRequest,
        ErrorCode::UnsupportedVersion,
        ErrorCode::UnknownSession,
        ErrorCode::InvalidProblem,
        ErrorCode::DeltaFailed,
        ErrorCode::ShuttingDown,
    ] {
        // The spec's table uses the wire tags (CamelCase variant names).
        let tag = format!("{code:?}");
        assert!(text.contains(&format!("`{tag}`")), "spec is missing error code {tag}");
    }
}

#[test]
fn doc_states_the_version_tag_the_code_ships() {
    assert!(doc().contains(covern::service::PROTOCOL_VERSION), "spec must name the protocol tag");
}
