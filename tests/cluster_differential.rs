//! Cluster-vs-single-process differential suite: the sharded
//! multi-worker coordinator (`covern::service::cluster`) must be an
//! *invisible* deployment change.
//!
//! The headline invariant: for one corpus, the canonical campaign report
//! is **byte-identical** across
//!
//! * the in-process [`CampaignEngine`],
//! * a cluster of **one** worker daemon, and
//! * a cluster of **four** worker daemons —
//!
//! verdict streams, strategy labels, witnesses, *and* the cache section:
//! family-key routing partitions the full-verify key space across
//! workers, so summed per-worker hit/miss/entry counters equal the
//! single shared cache's. A second test pins that cache arithmetic as
//! schedule-independent: a fully serial engine and a wide cluster
//! disagree on every scheduling decision and still report the same
//! counters.
//!
//! A third test repeats the headline invariant on a mixed corpus that
//! interleaves closed-loop lane-keeping scenarios (reach-tube sessions,
//! routed by the loop family key) with ordinary open-loop ones.
//!
//! Workers are real `covern_cli serve` processes (the test binary's own
//! companion binary), spoken to over TCP — nothing is mocked.

use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::{CampaignConfig, CampaignEngine, CampaignReport, Scenario};
use covern::service::{Cluster, ClusterConfig};
use std::path::PathBuf;

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_covern_cli"))
}

fn corpus() -> Vec<Scenario> {
    generate(&CorpusConfig {
        scenarios: 6,
        families: 2,
        events_per_scenario: 2,
        seed: 2021,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .expect("corpus generates")
}

/// A mixed corpus: open-loop scenarios interleaved with the closed-loop
/// lane-keeping pair, so the coordinator has to route reach-tube sessions
/// (keyed by the loop family key) next to ordinary ones.
fn mixed_corpus() -> Vec<Scenario> {
    generate(&CorpusConfig {
        scenarios: 2,
        families: 1,
        events_per_scenario: 2,
        seed: 2021,
        include_vehicle: false,
        include_closed_loop: true,
    })
    .expect("corpus generates")
}

/// Runs the corpus through a fresh cluster of `workers` daemons.
fn cluster_report(workers: usize, threads: usize, corpus: &[Scenario]) -> CampaignReport {
    let mut cluster = Cluster::launch(ClusterConfig {
        workers,
        threads,
        binary: Some(worker_binary()),
        ..ClusterConfig::default()
    })
    .expect("cluster launches");
    let report = cluster.run_campaign(corpus).expect("cluster campaign runs");
    cluster.shutdown();
    report
}

/// Runs the corpus through a fresh in-process engine (same method and
/// split budget the cluster hands its workers: the config defaults).
fn engine_report(threads: usize, corpus: &[Scenario]) -> CampaignReport {
    CampaignEngine::new(CampaignConfig { threads, ..CampaignConfig::default() })
        .run(corpus)
        .expect("engine campaign runs")
}

fn tallies(report: &CampaignReport) -> (usize, usize, usize, usize) {
    (report.proved, report.refuted, report.unknown, report.errors)
}

/// Per-session verdict streams, compared field-by-field before the
/// byte-level check so a divergence names its scenario and event.
fn assert_verdict_streams_equal(reference: &CampaignReport, candidate: &CampaignReport, who: &str) {
    assert_eq!(reference.scenarios.len(), candidate.scenarios.len());
    for (r, c) in reference.scenarios.iter().zip(&candidate.scenarios) {
        assert_eq!(r.name, c.name, "{who}: scenario order changed");
        assert_eq!(r.initial_outcome, c.initial_outcome, "{who}: {} initial verdict", r.name);
        assert_eq!(r.error, c.error, "{who}: {} error state", r.name);
        assert_eq!(r.events.len(), c.events.len(), "{who}: {} lost events", r.name);
        for (i, (re, ce)) in r.events.iter().zip(&c.events).enumerate() {
            assert_eq!(re.kind, ce.kind, "{who}: {} event {i} kind", r.name);
            assert_eq!(re.outcome, ce.outcome, "{who}: {} event {i} verdict", r.name);
            assert_eq!(re.strategy, ce.strategy, "{who}: {} event {i} strategy", r.name);
            assert_eq!(re.witness, ce.witness, "{who}: {} event {i} witness", r.name);
        }
    }
}

#[test]
fn canonical_report_is_byte_identical_across_single_one_and_four_workers() {
    let corpus = corpus();
    let single = engine_report(4, &corpus);
    let one = cluster_report(1, 4, &corpus);
    let four = cluster_report(4, 4, &corpus);

    // Structured comparison first — failures here localise the drift.
    assert_verdict_streams_equal(&single, &one, "1-worker cluster");
    assert_verdict_streams_equal(&single, &four, "4-worker cluster");
    for (report, who) in [(&one, "1-worker"), (&four, "4-worker")] {
        assert_eq!(
            (report.cache.hits, report.cache.misses, report.cache.entries),
            (single.cache.hits, single.cache.misses, single.cache.entries),
            "{who}: summed worker cache counters diverged from the shared cache"
        );
        assert_eq!(tallies(report), tallies(&single), "{who}: outcome tallies diverged");
    }

    // Then the invariant itself, at full strength.
    let reference = single.canonical_json().expect("reference serializes");
    assert_eq!(
        reference,
        one.canonical_json().unwrap(),
        "1-worker cluster canonical report is not byte-identical to single-process"
    );
    assert_eq!(
        reference,
        four.canonical_json().unwrap(),
        "4-worker cluster canonical report is not byte-identical to single-process"
    );
}

#[test]
fn closed_loop_canonical_report_is_byte_identical_across_deployments() {
    let corpus = mixed_corpus();
    let single = engine_report(4, &corpus);
    let one = cluster_report(1, 4, &corpus);
    let four = cluster_report(4, 4, &corpus);

    assert_verdict_streams_equal(&single, &one, "1-worker cluster (closed-loop)");
    assert_verdict_streams_equal(&single, &four, "4-worker cluster (closed-loop)");

    // The closed-loop pair must contribute real verdicts — one tube
    // proved, one refuted with a witness — or the byte comparison below
    // says nothing about reach-tube routing.
    let loop_reports: Vec<_> =
        single.scenarios.iter().filter(|s| s.name.starts_with("closedloop-")).collect();
    assert_eq!(loop_reports.len(), 2, "closed-loop scenarios missing from the report");
    let safe = loop_reports
        .iter()
        .find(|s| s.name.ends_with("-safe"))
        .expect("safe lane-keeping scenario present");
    assert_eq!(safe.initial_outcome, "proved", "safe lane-keeping tube must prove");
    let unsafe_ = loop_reports
        .iter()
        .find(|s| s.name.ends_with("-unsafe"))
        .expect("unsafe lane-keeping scenario present");
    assert_eq!(unsafe_.initial_outcome, "refuted", "unsafe lane-keeping tube must refute");

    let reference = single.canonical_json().expect("reference serializes");
    assert_eq!(
        reference,
        one.canonical_json().unwrap(),
        "1-worker cluster closed-loop canonical report is not byte-identical to single-process"
    );
    assert_eq!(
        reference,
        four.canonical_json().unwrap(),
        "4-worker cluster closed-loop canonical report is not byte-identical to single-process"
    );
}

#[test]
fn cache_stats_are_schedule_independent() {
    // The two most different schedules available: one thread, one
    // process, one cache — versus three daemons fed by six drivers.
    let corpus = corpus();
    let serial = engine_report(1, &corpus);
    let mut cluster = Cluster::launch(ClusterConfig {
        workers: 3,
        threads: 6,
        binary: Some(worker_binary()),
        ..ClusterConfig::default()
    })
    .expect("cluster launches");
    let wide = cluster.run_campaign(&corpus).expect("cluster campaign runs");
    cluster.shutdown();

    assert_verdict_streams_equal(&serial, &wide, "3-worker cluster");
    assert_eq!(
        (wide.cache.hits, wide.cache.misses, wide.cache.entries),
        (serial.cache.hits, serial.cache.misses, serial.cache.entries),
        "cache counters depended on the schedule"
    );
    assert!(serial.cache.hits > 0, "corpus too small to exercise the cache at all");
    assert_eq!(tallies(&wide), tallies(&serial));
}
