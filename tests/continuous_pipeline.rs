//! Cross-crate integration: the continuous-engineering loop over many
//! events, mixing SVuDC and SVbTV.

use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::core::artifact::Margin;
use covern::core::method::LocalMethod;
use covern::core::pipeline::ContinuousVerifier;
use covern::core::problem::VerificationProblem;
use covern::core::report::{Strategy, VerifyOutcome};
use covern::nn::{Activation, Network};
use covern::tensor::Rng;

fn trained_like(seed: u64, dims: &[usize]) -> Network {
    let mut rng = Rng::seeded(seed);
    Network::random(dims, Activation::Relu, Activation::Identity, &mut rng)
}

fn verifier_for(net: &Network, din: &BoxDomain, dout_slack: f64) -> ContinuousVerifier {
    let dout = reach_boxes(net, din, DomainKind::Box).unwrap().output().dilate(dout_slack);
    let problem = VerificationProblem::new(net.clone(), din.clone(), dout).unwrap();
    ContinuousVerifier::with_margin(problem, DomainKind::Box, Margin::standard()).unwrap()
}

#[test]
fn interleaved_enlargements_and_fine_tunes() {
    let net = trained_like(11, &[4, 10, 8, 1]);
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 4]).unwrap();
    let mut v = verifier_for(&net, &din, 3.0);
    assert!(v.initial_report().outcome.is_proved());
    let method = LocalMethod::default();

    let mut rng = Rng::seeded(12);
    let mut current = net;
    // Six events alternating tiny enlargements and tiny fine-tunes.
    for step in 0..6 {
        if step % 2 == 0 {
            let enlarged = v.problem().din().dilate(1e-4);
            let report = v.on_domain_enlarged(&enlarged, &method).unwrap();
            assert!(report.outcome.is_proved(), "enlargement step {step} failed: {report}");
        } else {
            current = current.perturbed(5e-5, &mut rng);
            let report = v.on_model_updated(&current, None, &method).unwrap();
            assert!(report.outcome.is_proved(), "model step {step} failed: {report}");
            assert!(
                matches!(report.strategy, Strategy::Prop4 | Strategy::Fixing),
                "model step {step} escalated to {}",
                report.strategy
            );
        }
    }
    assert_eq!(v.history().len(), 6);
}

#[test]
fn incremental_is_cheaper_than_full_on_average() {
    // The paper's headline: incremental verification costs a fraction of
    // the original. Wall-clock assertions are flaky; compare aggregates
    // with a generous factor instead.
    let net = trained_like(21, &[6, 16, 12, 1]);
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 6]).unwrap();
    let mut v = verifier_for(&net, &din, 3.0);
    let method = LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: 16 };

    let mut incremental = std::time::Duration::ZERO;
    let mut full = std::time::Duration::ZERO;
    for _ in 0..5 {
        let enlarged = v.problem().din().dilate(1e-5);
        full += v.measure_full_baseline(Some(&enlarged), None).unwrap().wall;
        let report = v.on_domain_enlarged(&enlarged, &method).unwrap();
        assert!(report.outcome.is_proved());
        incremental += report.wall;
    }
    // Only assert a sane relationship, not a specific ratio.
    assert!(
        incremental < full * 20,
        "incremental {incremental:?} absurdly slower than full {full:?}"
    );
}

#[test]
fn refuted_property_is_never_papered_over() {
    // An update that genuinely breaks the property must not come back
    // Proved via any reuse path.
    let net = trained_like(31, &[3, 8, 1]);
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).unwrap();
    let mut v = verifier_for(&net, &din, 0.2);
    let mut broken = net.clone();
    let last = broken.num_layers() - 1;
    broken.layers_mut()[last].bias_mut()[0] += 50.0;
    let report = v.on_model_updated(&broken, None, &LocalMethod::default()).unwrap();
    assert!(!report.outcome.is_proved(), "broken model was certified: {report}");
}

#[test]
fn proved_claims_hold_on_samples() {
    // Soundness spot-check across the whole stack: every Proved event's
    // final state is validated by concrete sampling.
    let net = trained_like(41, &[4, 12, 6, 1]);
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 4]).unwrap();
    let mut v = verifier_for(&net, &din, 3.0);
    let method = LocalMethod::default();
    let mut rng = Rng::seeded(42);

    let mut current = net;
    for _ in 0..3 {
        current = current.perturbed(5e-5, &mut rng);
        let enlarged = v.problem().din().dilate(1e-4);
        let report = v.on_model_updated(&current, Some(&enlarged), &method).unwrap();
        if report.outcome != VerifyOutcome::Proved {
            continue;
        }
        let dout = v.problem().dout().dilate(1e-6);
        for _ in 0..200 {
            let x: Vec<f64> = v
                .problem()
                .din()
                .intervals()
                .iter()
                .map(|iv| rng.uniform(iv.lo(), iv.hi()))
                .collect();
            let y = current.forward(&x).unwrap();
            assert!(dout.contains(&y), "proved property violated at sample");
        }
    }
}

#[test]
fn fallback_to_full_reverification_recovers() {
    // A change too large for every reuse path must still be verified by
    // the full fallback (the property itself remains true thanks to the
    // huge Dout slack).
    let net = trained_like(51, &[3, 8, 6, 1]);
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).unwrap();
    let dout = reach_boxes(&net, &din, DomainKind::Box).unwrap().output().dilate(500.0);
    let problem = VerificationProblem::new(net.clone(), din, dout).unwrap();
    let mut v =
        ContinuousVerifier::with_margin(problem, DomainKind::Box, Margin::standard()).unwrap();

    let mut rng = Rng::seeded(52);
    let mangled = net.perturbed(0.5, &mut rng); // far beyond margin slack
    let report = v.on_model_updated(&mangled, None, &LocalMethod::default()).unwrap();
    assert!(report.outcome.is_proved(), "{report}");
    assert_eq!(report.strategy, Strategy::Full);
}
