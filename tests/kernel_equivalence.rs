//! Differential equivalence of the batched kernel layer against the naive
//! reference paths it replaced.
//!
//! The kernel rewiring (PR 5) is only sound if it is *invisible*: every
//! kernel must produce the same numbers as the one-vector-at-a-time loop it
//! replaced, on every input, deterministically. These properties lock that
//! in:
//!
//! * kernel matmul ≡ naive triple-loop matmul (bit-identical);
//! * fused interval matvec ≡ sign-aware scalar interval accumulation
//!   (bit-identical, and the historical box-transformer semantics);
//! * `Network::forward_batch` row `i` ≡ `Network::forward` on point `i`
//!   (bit-identical);
//! * every kernel is deterministic across repeated calls;
//! * branch-and-bound verdict bytes are unchanged between 1 and N worker
//!   threads now that concrete probes run on the batched path.
//!
//! The asserts use exact equality (0 ulp) wherever the reduction orders
//! match by construction; the soundness property uses a tolerance because
//! it compares against *mathematically* interior points, not a reference
//! implementation.

use covern::absint::bnb::{decide, BnbConfig, SplitStrategy};
use covern::absint::zonotope::Zonotope;
use covern::absint::{BoxDomain, DomainKind, Interval};
use covern::nn::{Activation, Network};
use covern::tensor::kernels::{self, SplitMatrix};
use covern::tensor::{Matrix, Rng};
use proptest::prelude::*;
use proptest::TestCaseError;

fn seeded_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Rng::seeded(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-3.0, 3.0))
}

/// The historical box-transformer inner loop: sign-aware interval
/// accumulation, one neuron at a time, ascending input index. Kept here as
/// the differential baseline for the fused kernel.
fn naive_interval_affine(w: &Matrix, bias: &[f64], lo: &[f64], hi: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut lo_out = Vec::with_capacity(w.rows());
    let mut hi_out = Vec::with_capacity(w.rows());
    for (i, &b) in bias.iter().enumerate().take(w.rows()) {
        let mut acc = Interval::point(b);
        for j in 0..w.cols() {
            let iv = Interval::new(lo[j], hi[j]).expect("lo <= hi by construction");
            acc = acc.add(&iv.scale(w.get(i, j)));
        }
        lo_out.push(acc.lo());
        hi_out.push(acc.hi());
    }
    (lo_out, hi_out)
}

proptest! {
    /// Kernel matmul is bit-identical to the naive triple loop on finite
    /// inputs, across shapes that exercise every blocking remainder.
    #[test]
    fn prop_matmul_bit_identical_to_naive(
        seed in 0u64..10_000,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
    ) {
        let a = seeded_matrix(seed, m, k);
        let b = seeded_matrix(seed.wrapping_add(1), k, n);
        let kernel = kernels::matmul(&a, &b);
        let naive = a.matmul(&b);
        prop_assert_eq!(kernel, naive, "matmul diverged at {}x{}x{}", m, k, n);
    }

    /// The fused interval matvec matches the sign-aware scalar loop bit for
    /// bit, and its bounds are correctly ordered.
    #[test]
    fn prop_fused_interval_matvec_bit_identical(
        seed in 0u64..10_000,
        rows in 1usize..10,
        cols in 1usize..10,
    ) {
        let w = seeded_matrix(seed, rows, cols);
        let mut rng = Rng::seeded(seed.wrapping_add(7));
        let lo: Vec<f64> = (0..cols).map(|_| rng.uniform(-2.0, 1.0)).collect();
        let hi: Vec<f64> = lo.iter().map(|&l| l + rng.uniform(0.0, 3.0)).collect();
        let bias: Vec<f64> = (0..rows).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let split = SplitMatrix::compile(&w);
        let mut lo_out = vec![0.0; rows];
        let mut hi_out = vec![0.0; rows];
        split.fused_interval_matvec(&lo, &hi, &bias, &mut lo_out, &mut hi_out);
        let (lo_ref, hi_ref) = naive_interval_affine(&w, &bias, &lo, &hi);
        prop_assert_eq!(&lo_out, &lo_ref, "lower bounds diverged");
        prop_assert_eq!(&hi_out, &hi_ref, "upper bounds diverged");
        for i in 0..rows {
            prop_assert!(lo_out[i] <= hi_out[i], "inverted bounds at row {}", i);
        }
    }

    /// The fused interval matmul agrees column-wise with the fused matvec
    /// (and hence with the scalar reference) to 0 ulp.
    #[test]
    fn prop_fused_interval_matmul_matches_columnwise_matvec(
        seed in 0u64..10_000,
        rows in 1usize..8,
        cols in 1usize..8,
        d in 1usize..6,
    ) {
        let w = seeded_matrix(seed, rows, cols);
        let lo_m = seeded_matrix(seed.wrapping_add(11), cols, d);
        // hi = lo + positive offset, element-wise.
        let mut rng = Rng::seeded(seed.wrapping_add(13));
        let hi_m = Matrix::from_fn(cols, d, |i, j| lo_m.get(i, j) + rng.uniform(0.0, 2.0));
        let split = SplitMatrix::compile(&w);
        let (lo_out, hi_out) = split.fused_interval_matmul(&lo_m, &hi_m);
        let zero_bias = vec![0.0; rows];
        for col in 0..d {
            let lo_col: Vec<f64> = lo_m.col_iter(col).collect();
            let hi_col: Vec<f64> = hi_m.col_iter(col).collect();
            let mut lo_ref = vec![0.0; rows];
            let mut hi_ref = vec![0.0; rows];
            split.fused_interval_matvec(&lo_col, &hi_col, &zero_bias, &mut lo_ref, &mut hi_ref);
            for i in 0..rows {
                prop_assert_eq!(lo_out.get(i, col), lo_ref[i], "lo ({}, {})", i, col);
                prop_assert_eq!(hi_out.get(i, col), hi_ref[i], "hi ({}, {})", i, col);
            }
        }
    }

    /// Batch-forward row `i` is bit-identical to the single forward pass on
    /// point `i`, for every batch size that exercises the row blocking.
    #[test]
    fn prop_forward_batch_rows_equal_single_forward(
        seed in 0u64..10_000,
        npts in 1usize..9,
    ) {
        let mut rng = Rng::seeded(seed);
        let net = Network::random(&[3, 7, 5, 2], Activation::Relu, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(npts, 3, |_, _| rng.uniform(-2.0, 2.0));
        let batched = net.forward_batch(&x).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for p in 0..npts {
            let single = net.forward(x.row(p)).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(batched.row(p), single.as_slice(), "row {} diverged", p);
        }
    }

    /// Kernels are deterministic: repeated calls on the same inputs return
    /// byte-identical results (the invariant the schedule-independence
    /// guarantees of the B&B engine are built on).
    #[test]
    fn prop_kernels_deterministic_across_calls(seed in 0u64..10_000) {
        let a = seeded_matrix(seed, 6, 5);
        let b = seeded_matrix(seed.wrapping_add(3), 5, 7);
        prop_assert_eq!(kernels::matmul(&a, &b), kernels::matmul(&a, &b));
        let x = seeded_matrix(seed.wrapping_add(5), 8, 5);
        let bias = vec![0.5; 6];
        prop_assert_eq!(
            kernels::batch_affine_nt(&x, &a, &bias),
            kernels::batch_affine_nt(&x, &a, &bias)
        );
    }

    /// Girard order reduction is a pure function of the input bits: repeated
    /// calls are byte-identical, the generator cap holds, and every
    /// per-neuron concretisation radius survives the fold up to the
    /// `SOUND_EPS` round-off convention. Multi-step closed-loop tubes lean
    /// on exactly this (the reduction runs once per plant step, so any
    /// nondeterminism would compound across the horizon).
    #[test]
    fn prop_reduce_order_deterministic_and_radius_preserving(
        seed in 0u64..10_000,
        n in 1usize..6,
        g in 1usize..24,
        max in 1usize..16,
    ) {
        let generators = seeded_matrix(seed, n, g);
        let mut rng = Rng::seeded(seed.wrapping_add(17));
        let center: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let clamp = vec![Interval::new(-1e12, 1e12).expect("ordered"); n];
        let z = Zonotope::from_parts(center, generators, clamp)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let a = z.reduce_order(max);
        let b = z.reduce_order(max);
        prop_assert_eq!(&a, &b, "order reduction is not deterministic");
        prop_assert!(
            a.num_generators() <= max.max(n) && a.num_generators() <= g.max(n),
            "generator cap violated: {} after reduce_order({}) on {}x{}",
            a.num_generators(), max, n, g
        );
        for i in 0..n {
            let before = z.concretize_neuron(i);
            let after = a.concretize_neuron(i);
            prop_assert!(
                after.lo() <= before.lo() + covern::absint::SOUND_EPS
                    && after.hi() >= before.hi() - covern::absint::SOUND_EPS,
                "neuron {} radius shrank: [{}, {}] -> [{}, {}]",
                i, before.lo(), before.hi(), after.lo(), after.hi()
            );
        }
    }

    /// Full B&B verdict bytes — outcome (including any witness), split
    /// accounting, proved-leaf and frontier counts — are identical for 1
    /// and 4 worker threads with the probes on the batched forward path.
    #[test]
    fn prop_bnb_verdict_bytes_thread_independent(
        seed in 0u64..300,
        cap in 0.5f64..8.0,
        strategy_slack in proptest::bool::ANY,
    ) {
        let mut rng = Rng::seeded(seed);
        let net = Network::random(&[2, 6, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        let input = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)])
            .expect("well-formed box");
        let target = BoxDomain::from_bounds(&[(-cap, cap)]).expect("well-formed target");
        let strategy =
            if strategy_slack { SplitStrategy::OutputSlack } else { SplitStrategy::WidestDim };
        let base = BnbConfig::new(DomainKind::Box, 64).with_strategy(strategy);
        let seq = decide(&net, &input, &target, &base.with_threads(1))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let par = decide(&net, &input, &target, &base.with_threads(4))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&seq.outcome, &par.outcome, "verdict changed with thread count");
        prop_assert_eq!(seq.splits, par.splits, "split accounting changed");
        prop_assert_eq!(seq.leaves_proved, par.leaves_proved, "leaf accounting changed");
        prop_assert_eq!(seq.frontier_remaining, par.frontier_remaining, "frontier changed");
        // A refutation witness must actually violate when replayed — and
        // replay bit-identically through the batched path.
        if let covern::absint::refine::Outcome::Refuted(w) = &seq.outcome {
            let y = net.forward(w).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert!(!target.contains(&y), "witness does not replay");
            let batch = Matrix::from_vec(1, w.len(), w.clone());
            let yb = net.forward_batch(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(yb.row(0), y.as_slice());
        }
    }
}

/// Through-layer propagation after the rewiring still contains concrete
/// samples in all three domains (spot soundness check on the fused path —
/// the full suite lives in `tests/domain_soundness.rs`).
#[test]
fn fused_path_reach_still_contains_samples() {
    let mut rng = Rng::seeded(424_242);
    let net = Network::random(&[3, 8, 6, 2], Activation::Relu, Activation::Tanh, &mut rng);
    let input = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).expect("well-formed box");
    for kind in DomainKind::ALL {
        let abs = covern::absint::reach_boxes(&net, &input, kind).expect("reach");
        for _ in 0..50 {
            let x: Vec<f64> =
                input.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect();
            let trace = net.forward_trace(&x).expect("trace");
            for (k, vals) in trace.iter().enumerate() {
                assert!(
                    abs.layer_box(k + 1).expect("layer box").contains(vals),
                    "{kind}: sample escaped S{} on the fused path",
                    k + 1
                );
            }
        }
    }
}
