//! `docs/OPERATIONS.md` never drifts from the metrics registry: every
//! registered series must be documented (backtick-quoted, with its type)
//! and every `covern_`-prefixed series the doc mentions must exist in
//! the registry. A third gate lints the actual Prometheus text render
//! for exposition-format well-formedness — the same checks a scraper's
//! parser would apply.

use covern::observe::metrics;
use std::collections::BTreeSet;

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/OPERATIONS.md");
    std::fs::read_to_string(path).expect("docs/OPERATIONS.md exists")
}

/// Series names the doc mentions in backticks (`covern_…`), base name
/// only (label selectors like `{outcome="proved"}` stripped).
fn documented_names(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, _) in text.match_indices("`covern_") {
        let rest = &text[i + 1..];
        let Some(end) = rest.find('`') else { continue };
        let name: String =
            rest[..end].chars().take_while(|c| *c == '_' || c.is_ascii_alphanumeric()).collect();
        // Only metric series (snake_case, no ::), not crate names like
        // `covern_observe` — filter by the registry's naming convention.
        if name.ends_with("_total")
            || name.ends_with("_seconds")
            || name.ends_with("_active")
            || name.ends_with("_open")
            || name.ends_with("_depth")
            || name.ends_with("_entries")
        {
            names.insert(name);
        }
    }
    names
}

#[test]
fn every_registered_metric_is_documented() {
    let text = doc();
    for d in metrics().descriptors() {
        assert!(
            text.contains(&format!("`{}`", d.name)),
            "docs/OPERATIONS.md is missing registered metric `{}`",
            d.name
        );
        // The catalog must state the series type next to the name — scan
        // the line(s) mentioning it for the kind keyword.
        let kind = d.kind.as_str();
        let mentions_with_kind = text
            .lines()
            .any(|l| l.contains(&format!("`{}`", d.name)) && l.to_lowercase().contains(kind));
        assert!(
            mentions_with_kind,
            "docs/OPERATIONS.md must state that `{}` is a {kind} on the same line",
            d.name
        );
    }
}

#[test]
fn every_documented_metric_is_registered() {
    let registered: BTreeSet<String> =
        metrics().descriptors().iter().map(|d| d.name.to_owned()).collect();
    for name in documented_names(&doc()) {
        assert!(
            registered.contains(&name),
            "docs/OPERATIONS.md documents `{name}` but the registry does not export it"
        );
    }
}

#[test]
fn registry_and_doc_label_series_consistently() {
    // Labelled counters (covern_verdicts_total{outcome=…}) must document
    // their label key.
    let text = doc();
    for d in metrics().descriptors() {
        for (key, _) in d.labels {
            assert!(
                text.contains(&format!("{key}=")),
                "docs/OPERATIONS.md must show the `{key}` label of `{}`",
                d.name
            );
        }
    }
}

/// The lint a Prometheus text-format parser would apply, over the real
/// render: HELP/TYPE pairs precede their samples, histograms carry
/// cumulative buckets ending at `+Inf` plus `_sum`/`_count`, every
/// sample line is `name[{labels}] value`.
#[test]
fn prometheus_render_is_well_formed() {
    let m = metrics();
    // Touch a histogram so bucket lines are exercised with data.
    m.open_latency_seconds.observe(0.003);
    let text = m.render_prometheus();
    assert!(text.ends_with('\n'), "exposition must end with a newline");

    let mut current_type: Option<(String, String)> = None;
    let mut seen_help = BTreeSet::new();
    let mut bucket_last: Option<(String, f64, f64)> = None; // (metric, le, cumulative count)
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a metric");
            assert!(seen_help.insert(name.to_owned()), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a metric").to_owned();
            let kind = parts.next().expect("TYPE states a kind").to_owned();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                "unknown TYPE kind {kind}"
            );
            assert!(seen_help.contains(&name), "TYPE for {name} must follow its HELP");
            current_type = Some((name, kind));
            continue;
        }
        assert!(!line.starts_with('#'), "only HELP/TYPE comments allowed: {line}");
        // Sample line: name or name{labels}, then a float.
        let (series, value) = line.rsplit_once(' ').expect("sample is `series value`");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("unparseable value: {line}"));
        let base = series.split('{').next().expect("series has a name");
        let (type_name, kind) = current_type.as_ref().expect("samples follow a TYPE");
        assert!(
            base == type_name
                || (kind == "histogram"
                    && (base == format!("{type_name}_bucket")
                        || base == format!("{type_name}_sum")
                        || base == format!("{type_name}_count"))),
            "sample {base} does not belong to TYPE {type_name}"
        );
        if base.ends_with("_bucket") {
            let le_raw = series
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("bucket has le");
            let le = if le_raw == "+Inf" { f64::INFINITY } else { le_raw.parse().unwrap() };
            if let Some((prev_metric, prev_le, prev_count)) = &bucket_last {
                if prev_metric == base {
                    assert!(le > *prev_le, "bucket bounds must ascend: {line}");
                    assert!(value >= *prev_count, "buckets must be cumulative: {line}");
                }
            }
            bucket_last = Some((base.to_owned(), le, value));
        } else if base.ends_with("_count") && kind == "histogram" {
            let last = bucket_last.take().expect("_count follows buckets");
            assert!(last.1.is_infinite(), "bucket list must end at le=\"+Inf\"");
            assert_eq!(last.2, value, "+Inf bucket must equal _count");
        }
    }
    // Every registered descriptor appears in the render.
    for d in metrics().descriptors() {
        assert!(
            text.contains(&format!("# TYPE {} ", d.name)),
            "render is missing TYPE for {}",
            d.name
        );
    }
}
