//! Platform-level integration: the simulated vehicle feeds the verifier.

use covern::absint::DomainKind;
use covern::core::artifact::{Margin, StateAbstractionArtifact};
use covern::core::method::LocalMethod;
use covern::core::pipeline::ContinuousVerifier;
use covern::core::problem::VerificationProblem;
use covern::vehicle::camera::Conditions;
use covern::vehicle::experiment::{Scenario, ScenarioConfig};

fn small_scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        train_samples: 50,
        train_epochs: 10,
        fine_tune_count: 2,
        hidden: vec![12, 6],
        ..ScenarioConfig::default()
    })
    .expect("scenario builds")
}

/// The platform property: the head's buffered output envelope over Din,
/// padded — the waypoint prediction stays in its commissioned range.
fn envelope_dout(
    scenario: &Scenario,
    head: &covern::nn::Network,
    margin: Margin,
) -> covern::absint::BoxDomain {
    let free = covern::absint::BoxDomain::from_bounds(&[(f64::NEG_INFINITY, f64::INFINITY)])
        .expect("free target");
    let envelope = StateAbstractionArtifact::build_with_margin(
        head,
        scenario.din(),
        &free,
        DomainKind::Box,
        margin,
    )
    .expect("envelope builds");
    envelope.layers().output().dilate(0.05)
}

#[test]
fn monitored_enlargements_verify_incrementally() {
    let scenario = small_scenario();
    let head = scenario.perception().head().clone();
    let margin = Margin::standard();
    let dout = envelope_dout(&scenario, &head, margin);
    let problem = VerificationProblem::new(head, scenario.din().clone(), dout).unwrap();
    let mut verifier = ContinuousVerifier::with_margin(problem, DomainKind::Box, margin).unwrap();
    assert!(verifier.initial_report().outcome.is_proved(), "original proof failed");

    let events = scenario.drive_and_monitor(&Scenario::standard_schedule(), 8).unwrap();
    assert!(!events.is_empty(), "the schedule must trip the monitor");

    let method = LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: 16 };
    let mut proved = 0usize;
    for ev in &events {
        let report = verifier.on_domain_enlarged(&ev.after, &method).unwrap();
        if report.outcome.is_proved() {
            proved += 1;
        }
    }
    // The enlargements are modest feature excursions; the verifier must
    // handle every event (proved via reuse or the full fallback).
    assert_eq!(proved, events.len(), "some events were left unresolved");
}

#[test]
fn fine_tuned_heads_verify_incrementally() {
    let scenario = small_scenario();
    let models = scenario.fine_tune_sequence().unwrap();
    let margin = Margin::standard();
    let dout = envelope_dout(&scenario, &models[0], margin);
    let problem =
        VerificationProblem::new(models[0].clone(), scenario.din().clone(), dout).unwrap();
    let mut verifier = ContinuousVerifier::with_margin(problem, DomainKind::Box, margin).unwrap();
    assert!(verifier.initial_report().outcome.is_proved());

    let method = LocalMethod::Refine { domain: DomainKind::Symbolic, max_splits: 16 };
    for (i, tuned) in models.iter().enumerate().skip(1) {
        let report = verifier.on_model_updated(tuned, None, &method).unwrap();
        assert!(report.outcome.is_proved(), "version {} unresolved: {report}", i + 1);
    }
}

#[test]
fn perception_vout_behaviour_is_sane_after_training() {
    // The trained head must respond to lane position: frames looking
    // left-of-lane vs right-of-lane should give different vout on average.
    // Uses the full-quality training config (the small config underfits).
    let scenario = Scenario::build(ScenarioConfig::default()).expect("scenario builds");
    let track = scenario.track().clone();
    let cam = scenario.camera().clone();
    let mut rng = covern::tensor::Rng::seeded(77);
    let mut left_sum = 0.0;
    let mut right_sum = 0.0;
    let n = 10;
    for i in 0..n {
        let s = track.length() * i as f64 / n as f64;
        let (x, y) = track.centerline(s);
        let h = track.heading(s);
        let mk = |dy: f64| covern::vehicle::control::VehicleState {
            x: x - dy * h.sin(),
            y: y + dy * h.cos(),
            theta: h,
            v: 1.0,
        };
        let img_l = cam.render(&track, &mk(0.15), &Conditions::nominal(), &mut rng);
        let img_r = cam.render(&track, &mk(-0.15), &Conditions::nominal(), &mut rng);
        left_sum += scenario.perception().vout(&img_l).unwrap();
        right_sum += scenario.perception().vout(&img_r).unwrap();
    }
    // Drifted left → centerline appears right of center → vout larger.
    assert!(
        left_sum > right_sum,
        "trained head does not separate lane sides: left {left_sum:.3} vs right {right_sum:.3}"
    );
}

#[test]
fn monitor_bounds_cover_training_features() {
    let scenario = small_scenario();
    // Re-render a handful of nominal frames and confirm the monitor (which
    // includes buffers) accepts them.
    let events = scenario.drive_and_monitor(&[Conditions::nominal()], 20).unwrap();
    assert!(events.len() <= 4, "nominal driving tripped the monitor {} times", events.len());
}
