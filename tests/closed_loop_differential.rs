//! Differential properties of the closed-loop reach-tube propagation.
//!
//! Three relations tie the closed-loop verifier to ground it cannot fake:
//!
//! * **Domain ordering** — the zonotope tube is step-wise inside the box
//!   tube. The box domain decorrelates state and control at the plant
//!   boundary (the wrapping effect); the zonotope keeps the feedback
//!   correlation through shared noise symbols, so it may only ever be
//!   *tighter*, never displaced.
//! * **Witness honesty** — every `refuted` verdict carries an initial
//!   state whose *concrete* simulation enters the unsafe region at the
//!   reported step. A refutation is a replayable counterexample, not an
//!   abstract overlap.
//! * **Warm/cold equivalence** — re-verification through the tube cache
//!   after a fine-tune delta is byte-identical to a cold run of the tuned
//!   controller, while recomputing strictly less; a pure property delta
//!   replays the whole tube from cache.

use covern::absint::{BoxDomain, DomainKind, SOUND_EPS};
use covern::closedloop::{AffinePlant, ClosedLoopSpec, LoopVerifier, TubeCache};
use covern::nn::{Activation, Network};
use covern::tensor::{Matrix, Rng};
use covern::vehicle::lateral;
use proptest::prelude::*;
use proptest::test_runner::Config;
use proptest::TestCaseError;
use std::sync::Arc;

/// A seeded closed-loop case mirroring `closed_loop_soundness`: an
/// open-loop-stable random plant under a random controller, so every
/// domain's tube stays finite over the horizon.
fn seeded_case(seed: u64) -> (ClosedLoopSpec, Network) {
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n = 1 + (seed % 3) as usize;
    let a =
        Matrix::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    rng.uniform(-0.7, 0.7)
                } else {
                    rng.uniform(-0.1, 0.1)
                }
            },
        );
    let b = Matrix::from_fn(n, 1, |_, _| rng.uniform(-0.4, 0.4));
    let c: Vec<f64> = (0..n).map(|_| rng.uniform(-0.05, 0.05)).collect();
    let plant = AffinePlant::new(&a, &b, &c).expect("square stable plant");
    let out = [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh]
        [((seed / 5) % 4) as usize];
    let controller = Network::random(&[n, 4, 1], Activation::Relu, out, &mut rng);
    let init_bounds: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let c0 = rng.uniform(-0.3, 0.3);
            (c0 - 0.25, c0 + 0.25)
        })
        .collect();
    let shift = rng.uniform(0.0, 2.0);
    let unsafe_bounds: Vec<(f64, f64)> = (0..n).map(|_| (shift, shift + 1.0)).collect();
    let spec = ClosedLoopSpec {
        plant,
        init: BoxDomain::from_bounds(&init_bounds).expect("ordered bounds"),
        unsafe_region: BoxDomain::from_bounds(&unsafe_bounds).expect("ordered bounds"),
        horizon: 6,
        max_generators: 12,
        sample_limit: 16,
    };
    (spec, controller)
}

/// Asserts the zonotope tube sits step-wise inside the box tube (both
/// recorded boxes carry the same `SOUND_EPS` dilation; one more epsilon
/// of slack absorbs the differing summation orders).
fn assert_zonotope_inside_box(
    spec: &ClosedLoopSpec,
    controller: &Network,
    who: &str,
) -> Result<(), TestCaseError> {
    let boxed = LoopVerifier::new(spec.clone(), controller.clone(), DomainKind::Box)
        .map_err(|e| TestCaseError::fail(e.to_string()))?
        .verify()
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    let zono = LoopVerifier::new(spec.clone(), controller.clone(), DomainKind::Zonotope)
        .map_err(|e| TestCaseError::fail(e.to_string()))?
        .verify()
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(boxed.steps.len(), zono.steps.len(), "{}: tube lengths differ", who);
    for (b, z) in boxed.steps.iter().zip(&zono.steps) {
        for (i, (bi, zi)) in b.state.intervals().iter().zip(z.state.intervals()).enumerate() {
            prop_assert!(
                zi.lo() >= bi.lo() - SOUND_EPS && zi.hi() <= bi.hi() + SOUND_EPS,
                "{}: step {} dim {}: zonotope [{}, {}] escapes box [{}, {}]",
                who,
                b.step,
                i,
                zi.lo(),
                zi.hi(),
                bi.lo(),
                bi.hi()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(Config::with_cases(32))]

    /// Step-wise domain ordering on seeded random loops.
    #[test]
    fn prop_zonotope_tube_inside_box_tube(seed in 0u64..10_000) {
        let (spec, controller) = seeded_case(seed);
        assert_zonotope_inside_box(&spec, &controller, "seeded")?;
    }

    /// Every refuted seeded loop hands out a concretely replayable
    /// witness, in every domain.
    #[test]
    fn prop_refuted_witnesses_replay_concretely(seed in 0u64..10_000) {
        let (spec, controller) = seeded_case(seed);
        for kind in DomainKind::ALL {
            let verifier = LoopVerifier::new(spec.clone(), controller.clone(), kind)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let report = verifier.verify().map_err(|e| TestCaseError::fail(e.to_string()))?;
            if report.outcome != "refuted" {
                continue;
            }
            let witness = report.witness.as_ref().expect("refuted carries a witness");
            let step = report.witness_step.expect("refuted carries a witness step");
            let (hit, state) = verifier
                .replay_witness(witness)
                .map_err(|e| TestCaseError::fail(e.to_string()))?
                .expect("witness must concretely reach the unsafe region");
            prop_assert_eq!(hit, step, "{}: replay disagrees on the violation step", kind);
            prop_assert!(
                spec.unsafe_region.contains(&state),
                "{}: replayed state {:?} is not in the unsafe region",
                kind,
                state
            );
            prop_assert!(
                report.steps[hit as usize].unsafe_overlap,
                "{}: the tube did not flag the step its own witness violates",
                kind
            );
        }
    }
}

/// Domain ordering on the lane-keeping workload, both cases.
#[test]
fn vehicle_zonotope_tube_inside_box_tube() {
    for (case, name) in [(lateral::safe_case(), "safe"), (lateral::unsafe_case(), "unsafe")] {
        assert_zonotope_inside_box(&case.spec, &case.controller, name)
            .unwrap_or_else(|e| panic!("vehicle {name}: {e:?}"));
    }
}

/// The unsafe lane-keeping case refutes in every domain, and its witness
/// replays into the unsafe region exactly where the report says.
#[test]
fn vehicle_unsafe_witness_replays_in_every_domain() {
    let case = lateral::unsafe_case();
    for kind in DomainKind::ALL {
        let verifier = LoopVerifier::new(case.spec.clone(), case.controller.clone(), kind)
            .expect("vehicle case validates");
        let report = verifier.verify().expect("verification runs");
        assert_eq!(report.outcome, "refuted", "{kind}: unsafe vehicle case must refute");
        let witness = report.witness.as_ref().expect("witness present");
        let (step, state) = verifier
            .replay_witness(witness)
            .expect("replay runs")
            .expect("witness reaches the unsafe region");
        assert_eq!(Some(step), report.witness_step, "{kind}: replay step");
        assert!(case.spec.unsafe_region.contains(&state), "{kind}: replayed state escapes");
    }
}

/// Warm re-verification after a fine-tune delta is **byte-identical** to
/// a cold run of the tuned controller — compared on the serialized
/// canonical report — while recomputing strictly fewer controller layer
/// passes than the cold run pays.
#[test]
fn warm_reverification_after_fine_tune_matches_cold_bytes() {
    let case = lateral::safe_case();
    let cache = Arc::new(TubeCache::new());
    let mut warm_verifier =
        LoopVerifier::new(case.spec.clone(), case.controller.clone(), DomainKind::Zonotope)
            .expect("vehicle case validates");
    warm_verifier.set_cache(Some(Arc::clone(&cache)));
    warm_verifier.verify().expect("initial verification runs");

    // Fine-tune only the output layer: the first-layer prefixes stay
    // valid, so the warm run reuses them.
    let mut tuned = case.controller.clone();
    let last = tuned.num_layers() - 1;
    tuned.layers_mut()[last].bias_mut()[0] += 1e-6;
    warm_verifier.set_controller(tuned.clone()).expect("tuned controller validates");
    let warm = warm_verifier.verify().expect("warm re-verification runs");

    let cold = LoopVerifier::new(case.spec.clone(), tuned, DomainKind::Zonotope)
        .expect("tuned case validates")
        .verify()
        .expect("cold verification runs");

    let warm_bytes = serde_json::to_string(&warm.canonical()).expect("warm serializes");
    let cold_bytes = serde_json::to_string(&cold.canonical()).expect("cold serializes");
    assert_eq!(warm_bytes, cold_bytes, "warm tube diverged from the cold tube");
    assert!(warm.layers_reused >= 1, "fine-tune warm start reused no layer prefixes");
    assert!(
        warm.layers_computed < cold.layers_computed,
        "warm re-verification must recompute strictly fewer layer passes ({} vs cold {})",
        warm.layers_computed,
        cold.layers_computed
    );
}

/// A pure property delta (new unsafe region, same loop) replays the whole
/// tube from cache — zero steps recomputed — and still matches a cold run
/// against the new region byte for byte.
#[test]
fn property_delta_replays_the_whole_tube_from_cache() {
    let case = lateral::safe_case();
    let cache = Arc::new(TubeCache::new());
    let mut warm_verifier =
        LoopVerifier::new(case.spec.clone(), case.controller.clone(), DomainKind::Zonotope)
            .expect("vehicle case validates");
    warm_verifier.set_cache(Some(Arc::clone(&cache)));
    warm_verifier.verify().expect("initial verification runs");

    let tightened = BoxDomain::from_bounds(&[(0.45, 5.0), (-3.2, 3.2)]).expect("static bounds");
    warm_verifier.set_unsafe_region(tightened.clone()).expect("region validates");
    let warm = warm_verifier.verify().expect("warm re-verification runs");
    assert_eq!(warm.steps_computed, 0, "a property delta must not recompute any step");
    assert_eq!(warm.steps_reused, case.spec.horizon as u64, "every step replays from cache");

    let mut cold_spec = case.spec.clone();
    cold_spec.unsafe_region = tightened;
    let cold = LoopVerifier::new(cold_spec, case.controller.clone(), DomainKind::Zonotope)
        .expect("tightened case validates")
        .verify()
        .expect("cold verification runs");
    assert_eq!(
        serde_json::to_string(&warm.canonical()).expect("warm serializes"),
        serde_json::to_string(&cold.canonical()).expect("cold serializes"),
        "cached tube replay diverged from a cold run against the new region"
    );
}
