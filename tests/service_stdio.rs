//! Smoke test: the real `covern_cli serve` daemon over stdio.
//!
//! Spawns the built binary, drives one session through its stdin/stdout
//! with the library client, and asserts a verdict and a cache hit — the
//! same sequence the CI `serve` smoke job runs. This is the supervised
//! deployment shape (daemon under systemd/container entrypoint, protocol
//! on stdio), so it must keep working end to end from a cold process.

use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::DeltaEvent;
use covern::service::client::Client;
use covern::service::protocol::OpenParams;
use std::process::{Command, Stdio};

#[test]
fn stdio_daemon_serves_a_session_with_a_cache_hit() {
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_covern_cli"))
        .args(["serve", "--stdio", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let stdin = daemon.stdin.take().expect("daemon stdin");
    let stdout = daemon.stdout.take().expect("daemon stdout");
    let mut client = Client::over(Box::new(stdout), Box::new(stdin));

    let info = client.hello().expect("hello");
    assert_eq!(info.protocol, covern::service::PROTOCOL_VERSION);

    // One fine-tune family, two branches: opening both sessions makes the
    // second original verification a process-wide cache hit.
    let corpus = generate(&CorpusConfig {
        scenarios: 2,
        families: 1,
        events_per_scenario: 2,
        seed: 5,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .unwrap();
    let mut sessions = Vec::new();
    for scenario in &corpus {
        let opened = client
            .open(OpenParams {
                label: scenario.name.clone(),
                network: scenario.network.clone(),
                din: scenario.din.clone(),
                dout: scenario.dout.clone(),
                domain: scenario.domain,
                margin: scenario.margin,
                closed_loop: scenario.closed_loop.clone(),
            })
            .expect("open");
        assert_eq!(opened.outcome, "proved");
        sessions.push(opened.session);
    }

    // Stream one delta and require a verdict.
    let verdict = client
        .delta(sessions[0], DeltaEvent::DomainEnlarged(corpus[0].din.dilate(0.01)))
        .expect("delta verdict");
    assert_eq!(verdict.record.kind, "domain-enlarged");
    assert!(!verdict.record.strategy.is_empty());

    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits >= 1, "shared-base open must hit the cache: {stats:?}");
    assert_eq!(stats.sessions_open, 2);
    assert_eq!(stats.deltas_applied, 1);

    client.shutdown().expect("clean shutdown");
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");
}
