//! Persistence round-trips through a campaign run: a scenario
//! interrupted mid-stream, saved with `ContinuousVerifier::save_to` and
//! resumed in a "fresh process" with `resume_from`, must finish with
//! exactly the verdict stream of the uninterrupted run — artifacts, the
//! advanced problem state, and the cache all survive the hop.

use covern::absint::BoxDomain;
use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::runner::{apply_event, execute_scenario, CampaignConfig, CampaignEngine};
use covern::campaign::{ArtifactCache, Scenario};
use covern::core::cache::VerifyCache;
use covern::core::method::LocalMethod;
use covern::core::pipeline::ContinuousVerifier;
use covern::core::problem::VerificationProblem;
use covern::nn::serialize::content_hash;
use std::sync::Arc;

fn corpus_config() -> CorpusConfig {
    CorpusConfig {
        scenarios: 2,
        families: 1,
        events_per_scenario: 6,
        seed: 31415,
        include_vehicle: false,
        include_closed_loop: false,
    }
}

fn method() -> LocalMethod {
    CampaignConfig::default().method
}

/// (kind, strategy, outcome) triples — the timing-free verdict stream.
fn verdicts_of(
    scenario: &Scenario,
    verifier_events: &[covern::core::report::VerifyReport],
) -> Vec<(String, String, String)> {
    scenario
        .events
        .iter()
        .zip(verifier_events.iter())
        .map(|(e, r)| (e.kind().to_string(), r.strategy.to_string(), r.outcome.to_string()))
        .collect()
}

#[test]
fn save_resume_mid_campaign_replays_the_uninterrupted_verdicts() {
    let corpus = generate(&corpus_config()).unwrap();
    let scenario = &corpus[0];
    let m = method();

    // Reference: the uninterrupted trajectory.
    let reference = execute_scenario(scenario, &m, 2, None);
    assert!(reference.error.is_none(), "{:?}", reference.error);
    assert_eq!(reference.events.len(), scenario.events.len());

    // Interrupted: run half the stream, persist, resume, run the rest.
    let dir = std::env::temp_dir().join("covern_campaign_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("checkpoint.json");
    let cache: Arc<ArtifactCache> = Arc::new(ArtifactCache::new());
    let split = scenario.events.len() / 2;

    let problem = VerificationProblem::new(
        scenario.network.clone(),
        scenario.din.clone(),
        scenario.dout.clone(),
    )
    .unwrap();
    let mut first_half = Vec::new();
    {
        let mut verifier = ContinuousVerifier::with_margin_cached(
            problem,
            scenario.domain,
            scenario.margin,
            Some(Arc::clone(&cache) as Arc<dyn VerifyCache>),
            2,
        )
        .unwrap();
        for event in &scenario.events[..split] {
            first_half.push(apply_event(&mut verifier, event, &m).unwrap());
        }
        assert_eq!(verifier.history().len(), split);
        verifier.save_to(&store).unwrap();
    } // verifier dropped: the "process" ends mid-campaign

    let mut verifier = ContinuousVerifier::resume_from(&store).unwrap();
    std::fs::remove_file(&store).ok();
    // The cache and thread budget are session-local; re-install them.
    verifier.set_cache(Some(Arc::clone(&cache) as Arc<dyn VerifyCache>));
    verifier.set_threads(2);
    assert!(verifier.initial_report().outcome.is_proved(), "restored proof status");
    let mut second_half = Vec::new();
    for event in &scenario.events[split..] {
        second_half.push(apply_event(&mut verifier, event, &m).unwrap());
    }
    assert_eq!(verifier.history().len(), scenario.events.len() - split);

    // Verdicts and strategies are unchanged by the round-trip.
    let mut resumed_events = first_half;
    resumed_events.append(&mut second_half);
    let resumed = verdicts_of(scenario, &resumed_events);
    let reference_verdicts: Vec<(String, String, String)> = reference
        .events
        .iter()
        .map(|e| (e.kind.clone(), e.strategy.clone(), e.outcome.clone()))
        .collect();
    assert_eq!(resumed, reference_verdicts);

    // And the final problem state matches the uninterrupted run's.
    let mut straight = ContinuousVerifier::with_margin_cached(
        VerificationProblem::new(
            scenario.network.clone(),
            scenario.din.clone(),
            scenario.dout.clone(),
        )
        .unwrap(),
        scenario.domain,
        scenario.margin,
        None,
        2,
    )
    .unwrap();
    for event in &scenario.events {
        apply_event(&mut straight, event, &m).unwrap();
    }
    assert_eq!(
        content_hash(verifier.problem().network()),
        content_hash(straight.problem().network())
    );
    assert_eq!(verifier.problem().din(), straight.problem().din());
    assert_eq!(verifier.problem().dout(), straight.problem().dout());
}

#[test]
fn campaign_report_survives_disk_roundtrip_canonically() {
    // The campaign-level persistence story: the report written by one run
    // parses back and its canonical form is reproducible from scratch.
    let corpus = generate(&corpus_config()).unwrap();
    let engine = CampaignEngine::new(CampaignConfig { threads: 2, ..CampaignConfig::default() });
    let report = engine.run(&corpus).unwrap();

    let dir = std::env::temp_dir().join("covern_campaign_resume_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.json");
    std::fs::write(&path, report.canonical_json().unwrap()).unwrap();
    let parsed =
        covern::campaign::CampaignReport::from_json(&std::fs::read_to_string(&path).unwrap())
            .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(parsed, report.canonical());

    let again = CampaignEngine::new(CampaignConfig { threads: 2, ..CampaignConfig::default() })
        .run(&corpus)
        .unwrap();
    assert_eq!(parsed, again.canonical());
}

#[test]
fn resumed_verifier_keeps_discharging_enlargements_incrementally() {
    // A campaign-flavoured regression of the original save/resume test:
    // resume, then push a *new* (not-from-corpus) enlargement and require
    // an incremental (non-Full) proof — the artifacts really travelled.
    let corpus = generate(&corpus_config()).unwrap();
    let scenario = &corpus[1];
    let m = method();
    let problem = VerificationProblem::new(
        scenario.network.clone(),
        scenario.din.clone(),
        scenario.dout.clone(),
    )
    .unwrap();
    let verifier =
        ContinuousVerifier::with_margin_cached(problem, scenario.domain, scenario.margin, None, 2)
            .unwrap();
    let dir = std::env::temp_dir().join("covern_campaign_resume_test3");
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("fresh.json");
    verifier.save_to(&store).unwrap();

    let mut resumed = ContinuousVerifier::resume_from(&store).unwrap();
    std::fs::remove_file(&store).ok();
    let grown: BoxDomain = resumed.problem().din().dilate(0.01);
    let report = resumed.on_domain_enlarged(&grown, &m).unwrap();
    assert!(report.outcome.is_proved(), "{report}");
    assert_ne!(report.strategy, covern::core::report::Strategy::Full);
}
