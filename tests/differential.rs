//! Differential tests across verification backends.
//!
//! Two independent deciders answer the same question — bisection-refined
//! abstract interpretation (`absint::refine`) and exact big-M MILP
//! (`milp::bb::decide_threshold`) — and a third oracle, concrete
//! execution, can only *refute*. The invariants:
//!
//! * MILP must never answer "safe" (threshold `Held` / containment
//!   `Proved`) when a concrete witness exists — in particular when
//!   refinement has already produced one;
//! * whenever either backend refutes, its witness must be a real,
//!   concretely-executable violation;
//! * campaign verdicts served from the artifact cache must be
//!   bit-identical to cache-cold verdicts.
//!
//! Seeds are pinned by the proptest shim (per-test-name RNG), so any
//! failure reproduces exactly.

use covern::absint::refine::{prove_forward_containment, Outcome};
use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::runner::{CampaignConfig, CampaignEngine};
use covern::milp::bb::{decide_threshold, ThresholdDecision};
use covern::milp::encode::encode_network;
use covern::milp::query::{check_containment_with_limit, Containment};
use covern::milp::MilpError;
use covern::nn::{Activation, Network};
use covern::tensor::Rng;
use proptest::prelude::*;
use proptest::TestCaseError;

const NODE_LIMIT: usize = 20_000;

fn case_net(seed: u64) -> Network {
    let dims: &[usize] = if seed.is_multiple_of(2) { &[2, 5, 1] } else { &[3, 6, 1] };
    let mut rng = Rng::seeded(seed.wrapping_mul(0x100_0000_01b3).wrapping_add(7));
    Network::random(dims, Activation::Relu, Activation::Identity, &mut rng)
}

fn unit_box(dim: usize) -> BoxDomain {
    BoxDomain::from_bounds(&vec![(-1.0, 1.0); dim]).expect("unit box")
}

fn sample_in(b: &BoxDomain, rng: &mut Rng) -> Vec<f64> {
    b.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn milp_threshold_never_held_against_concrete_witness(
        seed in 0u64..100_000,
        gap in 0.01f64..0.5,
    ) {
        // Place the threshold strictly below an *observed* output, so a
        // violation witness exists by construction; `Held` would be the
        // unsound answer the paper's Equation-2 method must never give.
        let net = case_net(seed);
        let din = unit_box(net.input_dim());
        let mut rng = Rng::seeded(seed ^ 0x5eed);
        let best = (0..200)
            .map(|_| net.forward(&sample_in(&din, &mut rng)).expect("forward")[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let threshold = best - gap;
        let mut enc = encode_network(&net, &din).expect("PWL network encodes");
        enc.model
            .set_objective(&[(enc.output_vars[0], 1.0)], true)
            .expect("output var exists");
        match decide_threshold(&enc.model, NODE_LIMIT, threshold) {
            Ok(ThresholdDecision::Held) => prop_assert!(
                false,
                "seed {seed}: Held at threshold {threshold} though a sample reached {best}"
            ),
            Ok(ThresholdDecision::Exceeded { x, objective }) => {
                prop_assert!(objective > threshold);
                // The witness must replay concretely.
                let input: Vec<f64> =
                    enc.input_vars.iter().map(|v| x[v.index()]).collect();
                let y = net.forward(&input).expect("forward")[0];
                prop_assert!(
                    y > threshold - 1e-6,
                    "seed {seed}: witness output {y} does not cross {threshold}"
                );
            }
            Err(MilpError::NodeLimit { .. }) => prop_assume!(false),
            Err(e) => prop_assert!(false, "seed {seed}: solver error {e}"),
        }
    }

    #[test]
    fn milp_containment_agrees_with_refinement(
        seed in 0u64..100_000,
        shrink in 0.1f64..0.9,
    ) {
        // The same containment instance through both backends; target
        // geometry sweeps from clearly-violated to clearly-true.
        let net = case_net(seed.wrapping_add(500_000));
        let din = unit_box(net.input_dim());
        let out = reach_boxes(&net, &din, DomainKind::Box).expect("reach").output().clone();
        let iv = out.interval(0);
        let (c, hw) = (0.5 * (iv.lo() + iv.hi()), 0.5 * iv.width());
        let target =
            BoxDomain::from_bounds(&[(c - shrink * hw, c + shrink * hw)]).expect("target box");
        let refine = prove_forward_containment(&net, &din, &target, DomainKind::Symbolic, 512)
            .expect("refinement runs");
        let milp = match check_containment_with_limit(&net, &din, &target, NODE_LIMIT) {
            Ok(v) => v,
            Err(MilpError::NodeLimit { .. }) => return Err(TestCaseError::Reject),
            Err(e) => return Err(TestCaseError::fail(format!("seed {seed}: solver error {e}"))),
        };
        match (&refine, &milp) {
            (Outcome::Refuted(w), _) => {
                // Premise: refinement's witness is a real violation …
                let y = net.forward(w).expect("forward");
                prop_assert!(
                    !target.dilate(1e-9).contains(&y),
                    "seed {seed}: refine witness {w:?} -> {y:?} does not violate"
                );
                // … so exact MILP must refute too, never prove.
                prop_assert!(
                    !milp.is_proved(),
                    "seed {seed}: MILP proved though refinement found witness {w:?}"
                );
            }
            (Outcome::Proved, Containment::Refuted { input_witness, .. }) => {
                // If MILP's witness replays concretely, refinement's proof
                // is unsound; if it does not, MILP fabricated a witness.
                let y = net.forward(input_witness).expect("forward");
                prop_assert!(
                    target.dilate(1e-6).contains(&y),
                    "seed {seed}: both backends decisive and contradictory \
                     (witness {input_witness:?} -> {y:?} escapes the target)"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn cached_campaign_verdicts_are_bit_identical_to_cold() {
    let corpus = generate(&CorpusConfig {
        scenarios: 10,
        families: 4,
        events_per_scenario: 4,
        seed: 777,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .expect("corpus generates");
    let warm = CampaignEngine::new(CampaignConfig { threads: 3, ..CampaignConfig::default() })
        .run(&corpus)
        .expect("warm campaign");
    let cold = CampaignEngine::new(CampaignConfig {
        threads: 3,
        use_cache: false,
        ..CampaignConfig::default()
    })
    .run(&corpus)
    .expect("cold campaign");
    assert!(warm.cache.hits > 0, "the corpus must actually share instances");
    // Identical verdict streams, strategies, witnesses — byte for byte
    // once timings are stripped.
    assert_eq!(warm.canonical().scenarios, cold.canonical().scenarios);
    let warm2 = CampaignEngine::new(CampaignConfig { threads: 1, ..CampaignConfig::default() })
        .run(&corpus)
        .expect("warm rerun");
    assert_eq!(warm.canonical().scenarios, warm2.canonical().scenarios);
    // Proof-level hit/miss counters are schedule-dependent (which worker
    // stores a family's checkpoint first varies), so compare the
    // canonical cache section, where they are zeroed.
    assert_eq!(
        warm.canonical().cache,
        warm2.canonical().cache,
        "single-flight counters are schedule-independent"
    );
}
