//! End-to-end test of the `covern_cli` binary: verify → enlarge → update
//! → status on the Figure 2 fixture, exercising the persisted-state path
//! exactly as a fleet script would.

use covern::absint::BoxDomain;
use covern::nn::{serialize, Activation, NetworkBuilder};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_covern_cli"))
}

#[test]
fn cli_verify_enlarge_update_status() {
    let dir = std::env::temp_dir().join("covern_cli_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let net_path = dir.join("f1.json");
    let tuned_path = dir.join("f2.json");
    let din_path = dir.join("din.json");
    let din2_path = dir.join("din2.json");
    let dout_path = dir.join("dout.json");
    let store = dir.join("state.json");

    let net = NetworkBuilder::new(2)
        .dense_from_rows(&[&[1.0, -2.0], &[-2.0, 1.0], &[1.0, -1.0]], &[0.0; 3], Activation::Relu)
        .dense_from_rows(&[&[2.0, 2.0, -1.0]], &[0.0], Activation::Relu)
        .build()
        .unwrap();
    serialize::save(&net, &net_path).unwrap();
    let mut rng = covern::tensor::Rng::seeded(5);
    serialize::save(&net.perturbed(1e-7, &mut rng), &tuned_path).unwrap();
    std::fs::write(&din_path, "[[-1.0, 1.0], [-1.0, 1.0]]").unwrap();
    std::fs::write(&din2_path, "[[-1.0, 1.1], [-1.0, 1.1]]").unwrap();
    std::fs::write(&dout_path, "[[-0.5, 12.0]]").unwrap();
    let _ = BoxDomain::from_bounds(&[(-1.0, 1.0)]); // keep the import honest

    // verify (margin 0 so the tight Fig-2 property is provable as stored)
    let out = cli()
        .args([
            "verify",
            "--network",
            net_path.to_str().unwrap(),
            "--din",
            din_path.to_str().unwrap(),
            "--dout",
            dout_path.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--margin",
            "0.0",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "verify failed: {}", String::from_utf8_lossy(&out.stderr));

    // enlarge (needs the exact method's slack: splits budget)
    let out = cli()
        .args([
            "enlarge",
            "--store",
            store.to_str().unwrap(),
            "--din",
            din2_path.to_str().unwrap(),
            "--splits",
            "4000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "enlarge failed: {}", String::from_utf8_lossy(&out.stdout));

    // update with a minutely-tuned model
    let out = cli()
        .args([
            "update",
            "--store",
            store.to_str().unwrap(),
            "--network",
            tuned_path.to_str().unwrap(),
            "--splits",
            "4000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "update failed: {}", String::from_utf8_lossy(&out.stdout));

    // a further enlargement through the portfolio engine (refiner racing
    // MILP) with an anytime deadline generous enough to never fire
    let din3_path = dir.join("din3.json");
    std::fs::write(&din3_path, "[[-1.0, 1.15], [-1.0, 1.15]]").unwrap();
    let out = cli()
        .args([
            "enlarge",
            "--store",
            store.to_str().unwrap(),
            "--din",
            din3_path.to_str().unwrap(),
            "--splits",
            "4000",
            "--refine-strategy",
            "portfolio",
            "--deadline-ms",
            "60000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "portfolio enlarge failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // status reflects a proved, advanced state
    let out = cli().args(["status", "--store", store.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("proof status: proved"), "status said: {stdout}");
    assert!(stdout.contains("1.15"), "domain did not advance: {stdout}");

    // garbage usage exits with failure
    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    // an unknown refine strategy is a usage error, not a silent default
    let out = cli()
        .args(["status", "--store", store.to_str().unwrap(), "--refine-strategy", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--refine-strategy"));

    std::fs::remove_dir_all(&dir).ok();
}
