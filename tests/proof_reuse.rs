//! Proof-level cache reuse properties.
//!
//! Three contracts keep the warm-start machinery honest:
//!
//! * **hash composition** — the composed per-layer content hashes fold to
//!   exactly the monolithic network address ([`content_hash`]), stay
//!   stable under clone and serialize/deserialize roundtrips, and react
//!   to a 1-ULP weight change in precisely the perturbed layer;
//! * **verdict canonicality** — a branch-and-bound run warm-started from
//!   a pre-fine-tune checkpoint answers byte-identically (outcome,
//!   witness, split accounting) to a cold run, at 1 and at 4 threads;
//! * **re-validation soundness** — a checkpoint whose "proved" leaves are
//!   lies (stale, or outright poisoned) can never smuggle a `Proved`
//!   verdict past weights that a concrete sample refutes.
//!
//! Plus the acceptance measurement: after a small fine-tune delta, the
//! warm-started search re-proves with strictly fewer splits than a cold
//! search of the tuned network.

use covern::absint::bnb::{decide_with_checkpoint, BnbCheckpoint, BnbConfig, BnbReport};
use covern::absint::refine::Outcome;
use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::nn::serialize::{
    compose_layer_hashes, content_hash, first_changed_layer, layer_hashes,
};
use covern::nn::{Activation, Network};
use covern::tensor::Rng;

const FAMILY_DIMS: [&[usize]; 4] = [&[2, 5, 1], &[3, 6, 1], &[2, 6, 4, 1], &[3, 5, 5, 1]];

fn family_net(seed: u64) -> Network {
    let dims = FAMILY_DIMS[(seed % FAMILY_DIMS.len() as u64) as usize];
    let mut rng = Rng::seeded(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    Network::random(dims, Activation::Relu, Activation::Identity, &mut rng)
}

fn unit_box(dim: usize) -> BoxDomain {
    BoxDomain::from_bounds(&vec![(-1.0, 1.0); dim]).expect("unit box")
}

/// A target between the concrete-sample hull and the (coarser) box-reach
/// output: tight enough that the root box fails the abstract check and
/// the search actually splits, wide enough that most instances prove.
fn splitting_target(net: &Network, din: &BoxDomain, slack: f64, seed: u64) -> BoxDomain {
    let coarse = reach_boxes(net, din, DomainKind::Box).expect("box reach").output().clone();
    let mut rng = Rng::seeded(seed ^ 0x5eed);
    let mut lo = vec![f64::INFINITY; net.output_dim()];
    let mut hi = vec![f64::NEG_INFINITY; net.output_dim()];
    for _ in 0..400 {
        let x: Vec<f64> = din.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect();
        for (d, y) in net.forward(&x).expect("forward").into_iter().enumerate() {
            lo[d] = lo[d].min(y);
            hi[d] = hi[d].max(y);
        }
    }
    let bounds: Vec<(f64, f64)> = (0..net.output_dim())
        .map(|d| {
            let iv = coarse.interval(d);
            // `slack` interpolates from the sampled hull (0.0) to the
            // box-reach overestimate (1.0).
            (lo[d] - slack * (lo[d] - iv.lo()), hi[d] + slack * (iv.hi() - hi[d]))
        })
        .collect();
    BoxDomain::from_bounds(&bounds).expect("target box")
}

/// Strips the schedule-dependent wall clock, leaving everything that must
/// be byte-identical across thread counts and warm/cold.
fn canon(report: &BnbReport) -> (Outcome, usize, usize, usize, bool, bool) {
    (
        report.outcome.clone(),
        report.splits,
        report.leaves_proved,
        report.frontier_remaining,
        report.deadline_hit,
        report.cancelled,
    )
}

#[test]
fn composed_layer_hashes_fold_to_the_monolithic_address() {
    for seed in 0..24u64 {
        let net = family_net(seed);
        let per_layer = layer_hashes(&net);
        assert_eq!(per_layer.len(), net.num_layers());
        assert_eq!(
            compose_layer_hashes(&per_layer),
            content_hash(&net),
            "seed {seed}: composed address must equal the monolithic hash"
        );
        // Clone stability.
        assert_eq!(per_layer, layer_hashes(&net.clone()));
        // Serialize/deserialize roundtrip stability (float formatting is
        // shortest-roundtrip, so bit patterns survive the JSON detour).
        let json = serde_json::to_string(&net).expect("network serializes");
        let back: Network = serde_json::from_str(&json).expect("network parses");
        assert_eq!(per_layer, layer_hashes(&back), "seed {seed}: roundtrip changed a hash");
        assert_eq!(content_hash(&net), content_hash(&back));
    }
}

#[test]
fn one_ulp_weight_changes_localize_to_their_layer() {
    for seed in 0..12u64 {
        let net = family_net(seed);
        let base = layer_hashes(&net);
        for layer in 0..net.num_layers() {
            let mut tuned = net.clone();
            let w = tuned.layers_mut()[layer].weights_mut();
            let old = w.get(0, 0);
            w.set(0, 0, f64::from_bits(old.to_bits() ^ 1));
            let new = layer_hashes(&tuned);
            assert_ne!(content_hash(&net), content_hash(&tuned), "seed {seed} layer {layer}");
            assert_eq!(first_changed_layer(&base, &new), Some(layer));
            for (k, (a, b)) in base.iter().zip(new.iter()).enumerate() {
                assert_eq!(k != layer, a == b, "seed {seed}: only layer {layer} may differ");
            }
        }
        assert_eq!(first_changed_layer(&base, &base), None);
    }
}

#[test]
fn warm_verdicts_and_witnesses_replay_cold_at_one_and_four_threads() {
    let mut exercised = 0usize;
    for seed in 0..10u64 {
        let net = family_net(seed);
        let din = unit_box(net.input_dim());
        let target = splitting_target(&net, &din, 0.55, seed);
        let base_cfg = BnbConfig::new(DomainKind::Box, 3_000).with_checkpoint_collection(true);
        let cold_base = decide_with_checkpoint(&net, &din, &target, &base_cfg, None, None)
            .expect("cold base run");
        let Some(checkpoint) = cold_base.checkpoint.clone() else {
            continue; // refuted base instances carry no proof state
        };
        // Three family members: the base itself, and two fine-tune deltas
        // of very different magnitude (the larger one breaks most leaves,
        // stressing the rerun-cold path).
        let mut members = vec![net.clone()];
        let mut rng = Rng::seeded(seed ^ 0xf1e7);
        members.push(net.perturbed(1e-5, &mut rng));
        members.push(net.perturbed(5e-2, &mut rng));
        for (m, member) in members.iter().enumerate() {
            let mut answers = Vec::new();
            for threads in [1usize, 4] {
                let cfg = base_cfg.with_threads(threads);
                let cold = decide_with_checkpoint(member, &din, &target, &cfg, None, None)
                    .expect("cold run");
                let warm =
                    decide_with_checkpoint(member, &din, &target, &cfg, Some(&checkpoint), None)
                        .expect("warm run");
                // Warm and cold must agree on the verdict — witness bytes
                // included — on every instance; split accounting is where
                // they are *allowed* to differ (saving splits is the
                // point of the warm start).
                assert_eq!(
                    cold.outcome, warm.outcome,
                    "seed {seed} member {m} threads {threads}: warm verdict must replay cold"
                );
                if let Outcome::Refuted(w) = &warm.outcome {
                    let y = member.forward(w).expect("forward");
                    assert!(!target.contains(&y), "witness must violate concretely");
                    assert!(!warm.warm_started, "refutations must come from the cold rerun");
                }
                answers.push((canon(&cold), canon(&warm)));
                exercised += 1;
            }
            // Full accounting — splits, proved leaves, frontier — must be
            // byte-identical across thread counts, cold and warm alike.
            assert_eq!(answers[0], answers[1], "seed {seed} member {m}: 1 vs 4 threads differ");
        }
    }
    assert!(exercised >= 12, "the family corpus must actually exercise warm runs: {exercised}");
}

#[test]
fn warm_start_reproves_fine_tune_deltas_with_fewer_splits() {
    let mut compared = 0usize;
    for seed in 0..10u64 {
        let net = family_net(seed);
        let din = unit_box(net.input_dim());
        let target = splitting_target(&net, &din, 0.55, seed);
        let cfg = BnbConfig::new(DomainKind::Box, 3_000).with_checkpoint_collection(true);
        let base = decide_with_checkpoint(&net, &din, &target, &cfg, None, None).expect("base");
        let (Outcome::Proved, Some(checkpoint)) = (&base.outcome, base.checkpoint.clone()) else {
            continue;
        };
        if base.splits == 0 {
            continue; // nothing to save if the root already proves
        }
        let mut rng = Rng::seeded(seed ^ 0x7a57e);
        let tuned = net.perturbed(1e-5, &mut rng);
        let cold = decide_with_checkpoint(&tuned, &din, &target, &cfg, None, None).expect("cold");
        let warm = decide_with_checkpoint(&tuned, &din, &target, &cfg, Some(&checkpoint), None)
            .expect("warm");
        if cold.outcome != Outcome::Proved {
            continue; // the delta tipped the instance; canonicality is covered above
        }
        assert_eq!(warm.outcome, Outcome::Proved);
        assert!(warm.warm_started, "seed {seed}: the warm run must actually use the seed");
        assert!(
            warm.splits < cold.splits,
            "seed {seed}: warm re-proof must save splits (warm {} vs cold {})",
            warm.splits,
            cold.splits
        );
        assert!(warm.leaves_revalidated > 0, "seed {seed}: some leaves must re-validate");
        compared += 1;
    }
    assert!(compared >= 3, "too few provable fine-tune instances exercised: {compared}");
}

#[test]
fn poisoned_proved_leaves_never_survive_concrete_refutation() {
    let mut refuted_somewhere = 0usize;
    for seed in 20..32u64 {
        let net = family_net(seed);
        let din = unit_box(net.input_dim());
        // A target strictly inside the sampled reach: concrete samples
        // refute it by construction.
        let target = {
            let hull = splitting_target(&net, &din, 0.0, seed);
            let bounds: Vec<(f64, f64)> = hull
                .intervals()
                .iter()
                .map(|iv| {
                    let shrink = 0.25 * iv.width();
                    (iv.lo() + shrink, iv.hi() - shrink)
                })
                .collect();
            BoxDomain::from_bounds(&bounds).expect("shrunken target")
        };
        // The poison: a checkpoint swearing the whole input box (and a
        // few bisections of it) are already proved.
        let halves = din.bisect_widest();
        let poison = BnbCheckpoint {
            proved: vec![din.clone(), halves.0.clone(), halves.1.clone()],
            open: vec![halves.0.clone()],
        };
        let cfg = BnbConfig::new(DomainKind::Box, 2_000).with_checkpoint_collection(true);
        let report = decide_with_checkpoint(&net, &din, &target, &cfg, Some(&poison), None)
            .expect("poisoned run");
        match &report.outcome {
            Outcome::Proved => panic!(
                "seed {seed}: poisoned checkpoint produced Proved against a \
                 concretely-refutable target"
            ),
            Outcome::Refuted(w) => {
                let y = net.forward(w).expect("forward");
                assert!(!target.contains(&y), "seed {seed}: witness does not violate");
                refuted_somewhere += 1;
            }
            Outcome::Unknown => {}
        }
    }
    assert!(refuted_somewhere >= 8, "refutations found: {refuted_somewhere}");
}
