//! The concrete numbers printed in the paper, regenerated exactly.
//!
//! * Figure 2: box bounds `n4 ∈ [0, 12]` on `[-1,1]²` and `[0, 12.4]` on
//!   the enlarged `[-1,1.1]²`; the exact (Equation 2, big-M MILP) maximum
//!   `6.2 < 12` on the enlarged domain and `6.0` on the original.
//! * Proposition 3's worked example: `Sn = [1,8]`, `ℓ = 100`, `κ = 0.02`
//!   → `Ŝn = [-1, 10] ⊆ [-10, 10]`.
//! * Section V's waypoint reconstruction `(int(224·vout), 75)`.

use covern::absint::{reach_boxes, BoxDomain, DomainKind};
use covern::core::method::LocalMethod;
use covern::core::pipeline::ContinuousVerifier;
use covern::core::problem::VerificationProblem;
use covern::core::report::Strategy;
use covern::milp::query::{max_output_neuron, min_output_neuron};
use covern::nn::{Activation, Network, NetworkBuilder};

fn fig2_net() -> Network {
    NetworkBuilder::new(2)
        .dense_from_rows(&[&[1.0, -2.0], &[-2.0, 1.0], &[1.0, -1.0]], &[0.0; 3], Activation::Relu)
        .dense_from_rows(&[&[2.0, 2.0, -1.0]], &[0.0], Activation::Relu)
        .build()
        .expect("fig2 network")
}

#[test]
fn fig2_black_interval_n4_is_0_to_12() {
    let net = fig2_net();
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
    let abs = reach_boxes(&net, &din, DomainKind::Box).unwrap();
    let n4 = abs.output().interval(0);
    assert!(n4.lo().abs() < 1e-6, "n4 lo {}", n4.lo());
    assert!((n4.hi() - 12.0).abs() < 1e-6, "n4 hi {}", n4.hi());
}

#[test]
fn fig2_red_interval_n4_is_0_to_12_4() {
    let net = fig2_net();
    let enlarged = BoxDomain::from_bounds(&[(-1.0, 1.1), (-1.0, 1.1)]).unwrap();
    let abs = reach_boxes(&net, &enlarged, DomainKind::Box).unwrap();
    let n4 = abs.output().interval(0);
    assert!((n4.hi() - 12.4).abs() < 1e-6, "n4 hi {}", n4.hi());
}

#[test]
fn fig2_intermediate_intervals_match() {
    // n1, n2 ∈ [0, 3] → [0, 3.1]; n3 ∈ [0, 2] → [0, 2.1].
    let net = fig2_net();
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
    let abs = reach_boxes(&net, &din, DomainKind::Box).unwrap();
    let s1 = abs.layer_box(1).unwrap();
    assert!((s1.interval(0).hi() - 3.0).abs() < 1e-6);
    assert!((s1.interval(1).hi() - 3.0).abs() < 1e-6);
    assert!((s1.interval(2).hi() - 2.0).abs() < 1e-6);

    let enlarged = BoxDomain::from_bounds(&[(-1.0, 1.1), (-1.0, 1.1)]).unwrap();
    let abs = reach_boxes(&net, &enlarged, DomainKind::Box).unwrap();
    let s1 = abs.layer_box(1).unwrap();
    assert!((s1.interval(0).hi() - 3.1).abs() < 1e-6);
    assert!((s1.interval(1).hi() - 3.1).abs() < 1e-6);
    assert!((s1.interval(2).hi() - 2.1).abs() < 1e-6);
}

#[test]
fn fig2_equation2_exact_maximum_is_6_2() {
    // "In this example, exact approaches indicate that the maximum possible
    // value for n4 equals 6.2. As 6.2 < 12, the safety property also holds
    // in the enlarged domain."
    let net = fig2_net();
    let enlarged = BoxDomain::from_bounds(&[(-1.0, 1.1), (-1.0, 1.1)]).unwrap();
    let max = max_output_neuron(&net, &enlarged, 0).unwrap();
    assert!((max - 6.2).abs() < 1e-6, "exact max {max}");
    assert!(max < 12.0);
    let min = min_output_neuron(&net, &enlarged, 0).unwrap();
    assert!(min.abs() < 1e-9);
}

#[test]
fn fig2_prop1_walkthrough_via_pipeline() {
    let net = fig2_net();
    let din = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)]).unwrap();
    let dout = BoxDomain::from_bounds(&[(-0.5, 12.0)]).unwrap();
    let problem = VerificationProblem::new(net, din, dout).unwrap();
    let mut verifier = ContinuousVerifier::new(problem, DomainKind::Box).unwrap();
    assert!(verifier.initial_report().outcome.is_proved());

    let enlarged = BoxDomain::from_bounds(&[(-1.0, 1.1), (-1.0, 1.1)]).unwrap();
    let report = verifier.on_domain_enlarged(&enlarged, &LocalMethod::default()).unwrap();
    assert!(report.outcome.is_proved());
    assert_eq!(report.strategy, Strategy::Prop1);
}

#[test]
fn prop3_worked_example_arithmetic() {
    // Sn = [1, 8], ℓκ = 2 → Ŝn = [-1, 10] ⊆ [-10, 10].
    let sn = BoxDomain::from_bounds(&[(1.0, 8.0)]).unwrap();
    let dilated = sn.dilate(100.0 * 0.02);
    assert!((dilated.interval(0).lo() + 1.0).abs() < 1e-12);
    assert!((dilated.interval(0).hi() - 10.0).abs() < 1e-12);
    let dout = BoxDomain::from_bounds(&[(-10.0, 10.0)]).unwrap();
    assert!(dout.contains_box(&dilated));
}

#[test]
fn prop3_kappa_of_paper_enlargement() {
    // Din = [1,2]², Δin from [0.99, 2.01]²: smallest κ is sqrt(2·0.01²).
    let din = BoxDomain::from_bounds(&[(1.0, 2.0), (1.0, 2.0)]).unwrap();
    let enlarged = BoxDomain::from_bounds(&[(0.99, 2.01), (0.99, 2.01)]).unwrap();
    let kappa = covern::core::prop_domain::enlargement_kappa(
        &enlarged,
        &din,
        covern::lipschitz::NormKind::L2,
    );
    assert!((kappa - (2.0f64 * 0.01 * 0.01).sqrt()).abs() < 1e-12);
}

#[test]
fn waypoint_formula_from_section_v() {
    // (x, y) := (int(224·vout), 75) with vout ∈ [0, 1] ⇒ x ∈ [0, 224].
    for vout in [0.0, 0.25, 0.5, 0.999] {
        let (x, y) = ((224.0 * vout) as i32, 75);
        assert!((0..=224).contains(&x));
        assert_eq!(y, 75);
    }
}
