//! The load generator's determinism contract, held against a live
//! daemon:
//!
//! 1. the canonical report is **byte-identical** across client
//!    parallelism (`connections` = 1 vs 4) for a fixed seed;
//! 2. every verdict measured under concurrent load equals the verdict a
//!    single quiet session gets for the same scenario — load changes
//!    *when* answers arrive, never *what* they are;
//! 3. a deliberately tiny inbox provokes `Busy` backpressure, and the
//!    run still recovers with zero lost or misordered verdicts.

use covern::campaign::corpus::{generate, CorpusConfig};
use covern::service::client::Client;
use covern::service::dispatch::{Service, ServiceConfig};
use covern::service::loadgen::{run, LoadgenConfig};
use covern::service::protocol::OpenParams;
use covern::service::transport::serve_tcp;

fn small_config(connections: usize) -> LoadgenConfig {
    LoadgenConfig {
        sessions: 6,
        connections,
        events_per_session: 2,
        families: 2,
        burst: 3,
        qps: 0,
        seed: 2021,
    }
}

#[test]
fn canonical_report_is_byte_identical_across_connection_counts() {
    let service = Service::new(ServiceConfig { workers: 2, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Same seed and workload, serial then 4-way parallel, against the
    // same daemon (the second run reuses the artifact cache — reuse is
    // also not allowed to change outcomes).
    let serial = run(&addr, &small_config(1)).unwrap();
    let parallel = run(&addr, &small_config(4)).unwrap();
    assert!(serial.passed(), "serial run failed: {:?}", serial.totals);
    assert!(parallel.passed(), "parallel run failed: {:?}", parallel.totals);

    let a = serial.canonical_json().unwrap();
    let b = parallel.canonical_json().unwrap();
    assert_eq!(a, b, "canonical report must not depend on client parallelism");

    let mut control = Client::connect(&addr).unwrap();
    control.shutdown().unwrap();
    server.join();
}

#[test]
fn qps_pacing_changes_when_sessions_start_but_not_the_canonical_report() {
    let service = Service::new(ServiceConfig { workers: 2, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Paced vs unpaced, serial vs parallel: four schedules, one report.
    // A high rate keeps the test fast while still exercising the pacing
    // arithmetic for every session index.
    let unpaced = run(&addr, &small_config(1)).unwrap();
    let paced_serial = run(&addr, &LoadgenConfig { qps: 400, ..small_config(1) }).unwrap();
    let paced_parallel = run(&addr, &LoadgenConfig { qps: 400, ..small_config(3) }).unwrap();
    for report in [&unpaced, &paced_serial, &paced_parallel] {
        assert!(report.passed(), "run failed: {:?}", report.totals);
    }

    let baseline = unpaced.canonical_json().unwrap();
    assert_eq!(
        baseline,
        paced_serial.canonical_json().unwrap(),
        "qps pacing must not leak into the canonical report"
    );
    assert_eq!(
        baseline,
        paced_parallel.canonical_json().unwrap(),
        "qps pacing must not leak into the canonical report (parallel)"
    );

    // The non-canonical report keeps the knob and the per-phase
    // histograms: one histogram per protocol phase, buckets conserved.
    assert_eq!(paced_serial.config.qps, 400);
    let phases: Vec<&str> = paced_serial.phase_latency.iter().map(|p| p.phase.as_str()).collect();
    assert_eq!(phases, ["open", "verdict", "close"]);
    for phase in &paced_serial.phase_latency {
        assert_eq!(
            phase.counts.iter().sum::<u64>(),
            phase.count,
            "histogram {} lost a sample",
            phase.phase
        );
    }

    let mut control = Client::connect(&addr).unwrap();
    control.shutdown().unwrap();
    server.join();
}

#[test]
fn verdicts_under_load_match_a_quiet_single_session_replay() {
    let service = Service::new(ServiceConfig { workers: 2, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let config = small_config(4);
    let loaded = run(&addr, &config).unwrap();
    assert!(loaded.passed());

    // Replay the identical corpus one scenario at a time, one in-flight
    // request in the whole daemon — the least concurrent schedule
    // possible — and demand the same verdict sequence.
    let corpus = generate(&CorpusConfig {
        scenarios: config.sessions,
        families: config.families,
        events_per_scenario: config.events_per_session,
        seed: config.seed,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .unwrap();
    let mut client = Client::connect(&addr).unwrap();
    for (index, scenario) in corpus.iter().enumerate() {
        let opened = client
            .open(OpenParams {
                label: scenario.name.clone(),
                network: scenario.network.clone(),
                din: scenario.din.clone(),
                dout: scenario.dout.clone(),
                domain: scenario.domain,
                margin: scenario.margin,
                closed_loop: scenario.closed_loop.clone(),
            })
            .unwrap();
        let mut quiet = String::new();
        for event in &scenario.events {
            let verdict = client.delta(opened.session, event.clone()).unwrap();
            quiet.push(match verdict.record.outcome.as_str() {
                "proved" => 'P',
                "refuted" => 'R',
                _ => 'U',
            });
        }
        client.close(opened.session).unwrap();

        let code = &loaded.outcome_codes[index];
        let (ordered, burst) = code.split_once('.').expect("code is `ordered.burst`");
        assert_eq!(
            ordered, quiet,
            "scenario {index} ({}) verdicts changed under load",
            scenario.name
        );
        // The burst re-asserts one idempotent delta: every copy must
        // land on the same verdict.
        assert_eq!(burst.len(), config.burst, "scenario {index} lost a burst verdict");
        assert!(
            burst.chars().all(|c| c == burst.chars().next().unwrap()),
            "idempotent burst verdicts diverged for scenario {index}: {code}"
        );
    }

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn tiny_inbox_provokes_busy_and_recovers_with_zero_lost_verdicts() {
    // One drain worker and a one-slot inbox: the pipelined burst phase
    // must bounce. The report still has to pass — every bounced delta
    // retried to a verdict, and the server-side session summaries agreed
    // with the client's own tallies (the cross-check inside the loadgen).
    let service =
        Service::new(ServiceConfig { workers: 1, inbox_capacity: 1, ..Default::default() });
    let server = serve_tcp(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let config = LoadgenConfig {
        sessions: 8,
        connections: 4,
        events_per_session: 1,
        families: 2,
        burst: 6,
        qps: 0,
        seed: 9,
    };
    let report = run(&addr, &config).unwrap();

    assert_eq!(report.totals.errors, 0, "no session may fail");
    assert!(report.backpressure.recovered, "every bounced delta must recover");
    assert_eq!(
        report.totals.verdicts,
        report.totals.ordered_deltas + report.totals.burst_deltas,
        "a verdict was lost: {:?}",
        report.totals
    );
    assert_eq!(report.totals.burst_deltas, (config.sessions * config.burst) as u64);
    assert!(
        report.backpressure.busy_replies >= 1,
        "a one-slot inbox under a 6-deep burst must produce Busy at least once"
    );
    assert_eq!(
        report.backpressure.retries, report.backpressure.busy_replies,
        "every Busy bounce is answered by exactly one retry"
    );
    assert!(report.passed());

    let mut control = Client::connect(&addr).unwrap();
    control.shutdown().unwrap();
    server.join();
}
