//! Containment properties of the Outward kernel family.
//!
//! The Deterministic family (see `tests/kernel_equivalence.rs`) is pinned
//! bit-for-bit against scalar references. The Outward family deliberately
//! reassociates its reductions for speed, so bit-identity is the wrong
//! contract; the right one — proved here over random shapes — is
//! *containment*:
//!
//! * every Outward interval result contains the Deterministic result for
//!   the same operands (raw kernel level);
//! * Outward box reachability contains Deterministic box reachability,
//!   layer by layer (monotone activations preserve interval nesting);
//! * Outward reachability in all three domains still contains concrete
//!   forward traces (end-to-end soundness);
//! * branch-and-bound verdict bytes stay identical between 1 and N worker
//!   threads with Outward kernels on the probe path;
//! * the always-on soundness guards promoted from `debug_assert!` fire in
//!   **every** profile — this integration binary is compiled with the
//!   workspace profile, so running it under `--release` (CI does) proves
//!   the guards did not compile away.
//!
//! `KernelMode` is process-global, and the tests in this binary run
//! concurrently, so every test that flips the mode serializes on
//! [`MODE_LOCK`] and restores Deterministic before releasing it. Tests
//! that call the Outward kernels *directly* need no lock — the raw entry
//! points do not consult the global.

use covern::absint::bnb::{decide, BnbConfig};
use covern::absint::{BoxDomain, DomainKind, Interval};
use covern::nn::{Activation, Network};
use covern::tensor::kernels::{self, KernelMode, SplitMatrix};
use covern::tensor::{Matrix, Rng};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::{Mutex, PoisonError};

/// Serializes every test that touches the process-global kernel mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global kernel mode set to `mode`, holding the lock
/// for the whole closure and restoring Deterministic afterwards. A
/// poisoned lock is recovered (the poisoning test already failed; the
/// mode is re-asserted here before use, so the state is clean).
fn with_mode<T>(mode: KernelMode, f: impl FnOnce() -> T) -> T {
    let _lock = MODE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    kernels::set_kernel_mode(mode);
    let out = f();
    kernels::set_kernel_mode(KernelMode::Deterministic);
    out
}

fn seeded_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Rng::seeded(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-3.0, 3.0))
}

proptest! {
    /// Raw kernel containment: the Outward fused interval matvec encloses
    /// the Deterministic result *and* exact images of sampled interior
    /// points, across shapes covering every unroll remainder.
    #[test]
    fn prop_outward_matvec_contains_deterministic(
        seed in 0u64..10_000,
        rows in 1usize..24,
        cols in 1usize..24,
    ) {
        let w = seeded_matrix(seed, rows, cols);
        let mut rng = Rng::seeded(seed.wrapping_add(7));
        let lo: Vec<f64> = (0..cols).map(|_| rng.uniform(-2.0, 1.0)).collect();
        let hi: Vec<f64> = lo.iter().map(|&l| l + rng.uniform(0.0, 3.0)).collect();
        let bias: Vec<f64> = (0..rows).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let split = SplitMatrix::compile(&w);
        let (mut dl, mut dh) = (vec![0.0; rows], vec![0.0; rows]);
        split.fused_interval_matvec(&lo, &hi, &bias, &mut dl, &mut dh);
        let (mut ol, mut oh) = (vec![0.0; rows], vec![0.0; rows]);
        split.fused_interval_matvec_outward(&lo, &hi, &bias, &mut ol, &mut oh);
        for i in 0..rows {
            prop_assert!(ol[i] <= dl[i], "row {}: outward lo above deterministic", i);
            prop_assert!(dh[i] <= oh[i], "row {}: outward hi below deterministic", i);
        }
        // Exact images of interior points stay enclosed too.
        for _ in 0..10 {
            let x: Vec<f64> =
                lo.iter().zip(&hi).map(|(&l, &h)| rng.uniform(l, h)).collect();
            for i in 0..rows {
                let y: f64 =
                    bias[i] + (0..cols).map(|j| w.get(i, j) * x[j]).sum::<f64>();
                prop_assert!(
                    ol[i] <= y && y <= oh[i],
                    "row {}: image {} escaped [{}, {}]", i, y, ol[i], oh[i]
                );
            }
        }
    }

    /// The per-row slack returned by the Outward interval matmul covers
    /// the coefficient-wise gap to the Deterministic result over the
    /// declared input-magnitude box — the exact contract the symbolic
    /// domain relies on when it folds the slack into its constant terms.
    #[test]
    fn prop_outward_matmul_slack_covers_coefficient_gap(
        seed in 0u64..10_000,
        rows in 1usize..10,
        cols in 1usize..10,
        d in 1usize..8,
    ) {
        let w = seeded_matrix(seed, rows, cols);
        let lo_m = seeded_matrix(seed.wrapping_add(11), cols, d);
        let mut rng = Rng::seeded(seed.wrapping_add(13));
        let hi_m = Matrix::from_fn(cols, d, |i, j| lo_m.get(i, j) + rng.uniform(0.0, 2.0));
        let xmax: Vec<f64> = (0..d).map(|_| rng.uniform(0.0, 2.0)).collect();
        let split = SplitMatrix::compile(&w);
        let (dlo, dhi) = split.fused_interval_matmul(&lo_m, &hi_m);
        let (olo, ohi, slack) = split.fused_interval_matmul_outward(&lo_m, &hi_m, &xmax);
        for (i, &s) in slack.iter().enumerate() {
            let gap_lo: f64 =
                (0..d).map(|c| (olo.get(i, c) - dlo.get(i, c)).abs() * xmax[c]).sum();
            let gap_hi: f64 =
                (0..d).map(|c| (ohi.get(i, c) - dhi.get(i, c)).abs() * xmax[c]).sum();
            prop_assert!(gap_lo <= s, "row {}: lo gap {} > slack {}", i, gap_lo, s);
            prop_assert!(gap_hi <= s, "row {}: hi gap {} > slack {}", i, gap_hi, s);
        }
    }

    /// Whole-network box reachability under Outward kernels contains the
    /// Deterministic reachability layer by layer: the dispatch point is
    /// `BoxDomain::through_affine`, and monotone activations preserve the
    /// interval nesting the kernel establishes.
    #[test]
    fn prop_outward_box_reach_contains_deterministic_reach(
        seed in 0u64..2_000,
        width in 2usize..9,
    ) {
        let mut rng = Rng::seeded(seed);
        let net =
            Network::random(&[3, width, width, 2], Activation::Relu, Activation::Tanh, &mut rng);
        let input = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).expect("well-formed box");
        let (det, out) = with_mode(KernelMode::Outward, || {
            kernels::set_kernel_mode(KernelMode::Deterministic);
            let det = covern::absint::reach_boxes(&net, &input, DomainKind::Box);
            kernels::set_kernel_mode(KernelMode::Outward);
            let out = covern::absint::reach_boxes(&net, &input, DomainKind::Box);
            (det, out)
        });
        let det = det.map_err(|e| TestCaseError::fail(e.to_string()))?;
        let out = out.map_err(|e| TestCaseError::fail(e.to_string()))?;
        for k in 1..=3 {
            let d = det.layer_box(k).expect("deterministic layer box");
            let o = out.layer_box(k).expect("outward layer box");
            for (i, (di, oi)) in d.intervals().iter().zip(o.intervals()).enumerate() {
                prop_assert!(
                    oi.contains_interval(di),
                    "S{} neuron {}: outward [{}, {}] does not contain deterministic [{}, {}]",
                    k, i, oi.lo(), oi.hi(), di.lo(), di.hi()
                );
            }
        }
    }

    /// B&B verdict bytes are identical for 1 and 4 worker threads with the
    /// Outward kernels live on the probe / box-propagation path — the
    /// Outward family trades lane order for speed but must stay
    /// schedule-independent.
    #[test]
    fn prop_bnb_verdict_bytes_thread_independent_outward(
        seed in 0u64..150,
        cap in 0.5f64..8.0,
    ) {
        let mut rng = Rng::seeded(seed);
        let net = Network::random(&[2, 6, 4, 1], Activation::Relu, Activation::Identity, &mut rng);
        let input = BoxDomain::from_bounds(&[(-1.0, 1.0), (-1.0, 1.0)])
            .expect("well-formed box");
        let target = BoxDomain::from_bounds(&[(-cap, cap)]).expect("well-formed target");
        let base = BnbConfig::new(DomainKind::Box, 64);
        let (seq, par) = with_mode(KernelMode::Outward, || {
            let seq = decide(&net, &input, &target, &base.with_threads(1));
            let par = decide(&net, &input, &target, &base.with_threads(4));
            (seq, par)
        });
        let seq = seq.map_err(|e| TestCaseError::fail(e.to_string()))?;
        let par = par.map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&seq.outcome, &par.outcome, "verdict changed with thread count");
        prop_assert_eq!(seq.splits, par.splits, "split accounting changed");
        prop_assert_eq!(seq.leaves_proved, par.leaves_proved, "leaf accounting changed");
        prop_assert_eq!(seq.frontier_remaining, par.frontier_remaining, "frontier changed");
    }
}

/// End-to-end soundness with Outward kernels live: reachability in all
/// three domains still contains concrete forward traces (the Outward
/// mirror of `fused_path_reach_still_contains_samples`).
#[test]
fn outward_reach_contains_samples_in_all_domains() {
    let mut rng = Rng::seeded(212_121);
    let net = Network::random(&[3, 8, 6, 2], Activation::Relu, Activation::Tanh, &mut rng);
    let input = BoxDomain::from_bounds(&[(-1.0, 1.0); 3]).expect("well-formed box");
    with_mode(KernelMode::Outward, || {
        for kind in DomainKind::ALL {
            let abs = covern::absint::reach_boxes(&net, &input, kind).expect("reach");
            for _ in 0..50 {
                let x: Vec<f64> =
                    input.intervals().iter().map(|iv| rng.uniform(iv.lo(), iv.hi())).collect();
                let trace = net.forward_trace(&x).expect("trace");
                for (k, vals) in trace.iter().enumerate() {
                    assert!(
                        abs.layer_box(k + 1).expect("layer box").contains(vals),
                        "{kind}: sample escaped S{} under Outward kernels",
                        k + 1
                    );
                }
            }
        }
    });
}

/// The canonical byte-identity surfaces must be oblivious to a *past*
/// Outward phase: flipping to Outward and back leaves the Deterministic
/// kernels producing the exact same bytes (no cached state leaks across
/// the mode switch).
#[test]
fn deterministic_results_unchanged_after_outward_phase() {
    let mut rng = Rng::seeded(77);
    let net = Network::random(&[3, 7, 4, 2], Activation::Relu, Activation::Identity, &mut rng);
    let x = Matrix::from_fn(5, 3, |_, _| rng.uniform(-2.0, 2.0));
    let before = with_mode(KernelMode::Deterministic, || net.forward_batch(&x).expect("forward"));
    let after = with_mode(KernelMode::Outward, || {
        let _ = net.forward_batch(&x).expect("forward under Outward");
        kernels::set_kernel_mode(KernelMode::Deterministic);
        net.forward_batch(&x).expect("forward")
    });
    assert_eq!(before, after, "deterministic bytes changed after an Outward phase");
}

// ---- release-profile guard regressions --------------------------------
//
// These guards were `debug_assert!`s once — compiled away under
// `--release`, which made `dilate(-eps)` silently *shrink* a supposedly
// outward dilation. They are hard `assert!`s now; this binary runs under
// `--release` in CI, so these three tests prove the promotion stuck.

#[test]
#[should_panic(expected = "dilation must be outward")]
fn dilate_rejects_negative_eps_in_release_builds() {
    let iv = Interval::new(0.0, 1.0).expect("well-formed");
    let _ = iv.dilate(-1e-9);
}

#[test]
#[should_panic(expected = "must not be NaN")]
fn interval_point_rejects_nan_in_release_builds() {
    let _ = Interval::point(f64::NAN);
}

#[test]
#[should_panic(expected = "must not be NaN")]
fn interval_from_unordered_rejects_nan_in_release_builds() {
    let _ = Interval::from_unordered(0.0, f64::NAN);
}
