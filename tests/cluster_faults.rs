//! Fault-injection suite for the verification cluster: a worker can die,
//! hang, or speak garbage mid-campaign, and the campaign must finish
//! with verdict streams identical to the single-process engine's.
//!
//! Three fault classes, each through the real failure path (the
//! coordinator is never told in advance):
//!
//! * **death** — [`KillAfter`] SIGKILLs the busiest worker the moment the
//!   first verdict lands, ten repetitions, every one compared
//!   field-by-field against the engine reference (the cache section is
//!   excluded: a kill legitimately loses the dead worker's counters);
//! * **hang** — a fake worker answers health pings politely and then
//!   stalls forever on session traffic, so only the per-request deadline
//!   can catch it (`covern_cluster_deadline_reroutes_total`);
//! * **garbage** — a fake worker replies with bytes that are not
//!   protocol JSON (`covern_cluster_malformed_responses_total`); the
//!   coordinator must count, retire, reroute — and never panic.
//!
//! The fakes are placed at the exact ring position that owns the first
//! scenario's proof-family key, so the fault is guaranteed to be hit
//! rather than routed around by luck.
//!
//! The death class additionally drills **auto-respawn**: after a kill,
//! the health monitor must restore the worker count within its respawn
//! budget (`covern_cluster_worker_respawns_total`) and the recovered
//! cluster — replacement daemon, empty caches — must still reproduce the
//! single-process verdict stream byte for byte.

use covern::campaign::corpus::{generate, CorpusConfig};
use covern::campaign::report::CacheSection;
use covern::campaign::{
    proof_family_key, CampaignConfig, CampaignEngine, CampaignReport, Scenario,
};
use covern::core::problem::VerificationProblem;
use covern::observe::metrics;
use covern::service::cluster::worker::WorkerHandle;
use covern::service::protocol::{
    decode, encode, Command, Reply, Request, Response, ServerInfo, PROTOCOL_VERSION,
};
use covern::service::{Cluster, ClusterConfig, HashRing, KillAfter};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_covern_cli"))
}

fn corpus(seed: u64) -> Vec<Scenario> {
    generate(&CorpusConfig {
        scenarios: 4,
        families: 2,
        events_per_scenario: 3,
        seed,
        include_vehicle: false,
        include_closed_loop: false,
    })
    .expect("corpus generates")
}

/// The ring owner of a scenario's placement key in an `n`-worker cluster
/// — where a fault must sit to be guaranteed traffic.
fn owner_of(scenario: &Scenario, n: usize) -> usize {
    let problem = VerificationProblem::new(
        scenario.network.clone(),
        scenario.din.clone(),
        scenario.dout.clone(),
    )
    .expect("corpus scenarios are valid problems");
    let key = proof_family_key(&problem, scenario.domain, scenario.margin).to_u128();
    HashRing::with_workers(n).route(key).expect("non-empty ring routes")
}

/// Canonical JSON with the cache section neutralised — fault runs lose
/// the dead worker's counters by design, everything else must survive.
fn canonical_minus_cache(report: &CampaignReport) -> String {
    let mut c = report.canonical();
    c.cache = CacheSection {
        enabled: true,
        hits: 0,
        misses: 0,
        entries: 0,
        proof_hits: 0,
        proof_misses: 0,
        tube_step_hits: 0,
        tube_step_misses: 0,
    };
    c.to_json().expect("report serializes")
}

#[test]
fn worker_kill_mid_campaign_is_absorbed_ten_out_of_ten_times() {
    let corpus = corpus(77);
    let reference =
        CampaignEngine::new(CampaignConfig::default()).run(&corpus).expect("engine reference runs");
    let expected = canonical_minus_cache(&reference);
    // Kill the worker that owns the first scenario: it is guaranteed to
    // hold at least one session whose stream is unfinished when the
    // cluster-wide first verdict triggers the kill.
    let victim = owner_of(&corpus[0], 2);
    let deaths_before = metrics().cluster_worker_deaths_total.get();
    let reassigned_before = metrics().cluster_reassignments_total.get();

    for rep in 0..10 {
        let mut cluster = Cluster::launch(ClusterConfig {
            workers: 2,
            binary: Some(worker_binary()),
            kill_after: Some(KillAfter { worker: victim, after_verdicts: 1 }),
            ..ClusterConfig::default()
        })
        .expect("cluster launches");
        let report = cluster.run_campaign(&corpus).expect("faulted campaign still runs");
        cluster.shutdown();

        assert_eq!(report.errors, 0, "rep {rep}: a scenario was lost to the kill");
        assert_eq!(
            canonical_minus_cache(&report),
            expected,
            "rep {rep}: verdict stream changed after the worker kill"
        );
    }
    // Every repetition detected the corpse through the real failure path
    // (`>=`: other tests in this binary may run concurrently and add
    // their own), and the drill exercised checkpoint-resume reassignment.
    assert!(
        metrics().cluster_worker_deaths_total.get() >= deaths_before + 10,
        "some repetition never detected the killed worker"
    );
    assert!(
        metrics().cluster_reassignments_total.get() > reassigned_before,
        "the kill drill never exercised session reassignment"
    );
}

#[test]
fn killed_worker_is_respawned_and_the_recovered_cluster_stays_byte_identical() {
    let corpus = corpus(21);
    let reference =
        CampaignEngine::new(CampaignConfig::default()).run(&corpus).expect("engine reference runs");
    let expected = canonical_minus_cache(&reference);
    let victim = owner_of(&corpus[0], 2);
    let respawns_before = metrics().cluster_worker_respawns_total.get();

    // A short ping interval so the monitor notices the corpse (and
    // respawns) promptly even once campaign traffic has stopped.
    let mut cluster = Cluster::launch(ClusterConfig {
        workers: 2,
        binary: Some(worker_binary()),
        ping_interval: Duration::from_millis(100),
        kill_after: Some(KillAfter { worker: victim, after_verdicts: 1 }),
        ..ClusterConfig::default()
    })
    .expect("cluster launches");

    let first = cluster.run_campaign(&corpus).expect("faulted campaign still runs");
    assert_eq!(first.errors, 0, "a scenario was lost to the kill");
    assert_eq!(
        canonical_minus_cache(&first),
        expected,
        "verdict stream changed after the worker kill"
    );

    // The health monitor must bring the worker count back to full
    // strength within its budget. Poll: detection (ping or request
    // fault) and the replacement launch both happen on its thread.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.workers_alive() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(cluster.workers_alive(), 2, "the killed worker was never respawned");
    assert!(
        metrics().cluster_worker_respawns_total.get() > respawns_before,
        "recovery did not go through the respawn path"
    );

    // The recovered cluster — replacement daemon live on the victim's
    // ring slot, empty caches and all — must reproduce the reference
    // verdict stream byte for byte.
    let second = cluster.run_campaign(&corpus).expect("recovered cluster runs");
    cluster.shutdown();
    assert_eq!(second.errors, 0, "a scenario was lost on the recovered cluster");
    assert_eq!(
        canonical_minus_cache(&second),
        expected,
        "verdict stream changed on the respawned worker"
    );
}

/// A fake worker: answers `Hello` correctly (so health pings pass and
/// the per-request deadline — not the monitor — must catch it), then
/// `misbehave` handles everything else.
fn fake_worker(misbehave: fn(&mut TcpStream, u64)) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("fake worker binds");
    let addr = listener.local_addr().expect("bound addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || {
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                while {
                    line.clear();
                    matches!(reader.read_line(&mut line), Ok(n) if n > 0)
                } {
                    let Ok(request) = decode::<Request>(&line) else { return };
                    if matches!(request.cmd, Command::Hello) {
                        let info = ServerInfo {
                            protocol: PROTOCOL_VERSION.into(),
                            server: "covern-fault-fake/0".into(),
                            session_threads: 1,
                            inbox_capacity: 32,
                        };
                        let reply = encode(&Response::new(request.id, Reply::Hello(info))).unwrap();
                        if writeln!(writer, "{reply}").is_err() {
                            return;
                        }
                    } else {
                        misbehave(&mut writer, request.id);
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// Stands up a cluster of one fake (at the ring position owning the
/// first scenario) and one real daemon, with a ping interval long enough
/// that only request traffic can expose the fake.
fn mixed_cluster(corpus: &[Scenario], fake_addr: String, deadline: Duration) -> Cluster {
    let fake_index = owner_of(&corpus[0], 2);
    let real_index = 1 - fake_index;
    let real =
        WorkerHandle::spawn(real_index, &worker_binary(), 1, 256).expect("real worker spawns");
    let fake = WorkerHandle::external(fake_index, fake_addr);
    let ordered = if fake_index == 0 { vec![fake, real] } else { vec![real, fake] };
    Cluster::with_workers(
        ClusterConfig {
            workers: 2,
            deadline,
            ping_interval: Duration::from_secs(60),
            ..ClusterConfig::default()
        },
        ordered,
    )
    .expect("mixed cluster assembles")
}

#[test]
fn slow_worker_blows_the_deadline_and_its_sessions_reroute() {
    let corpus = corpus(9);
    let reroutes_before = metrics().cluster_deadline_reroutes_total.get();

    // Stall: never answer session traffic; the client's read deadline is
    // the only way out.
    let addr = fake_worker(|_writer, _id| {
        std::thread::sleep(Duration::from_secs(120));
    });
    let mut cluster = mixed_cluster(&corpus, addr, Duration::from_secs(5));
    let report = cluster.run_campaign(&corpus).expect("campaign survives the hang");

    assert_eq!(report.errors, 0, "a scenario died with the slow worker");
    assert_eq!(report.proved + report.refuted + report.unknown, corpus.len());
    assert!(
        metrics().cluster_deadline_reroutes_total.get() > reroutes_before,
        "no request ever hit the per-request deadline"
    );
    assert_eq!(cluster.workers_alive(), 1, "the slow worker was not retired");
    cluster.shutdown();
}

#[test]
fn malformed_replies_are_counted_retired_and_never_panic() {
    let corpus = corpus(13);
    let malformed_before = metrics().cluster_malformed_responses_total.get();

    // Garbage: bytes that are not protocol JSON at all.
    let addr = fake_worker(|writer, _id| {
        let _ = writeln!(writer, "this is not covern-protocol-v1");
    });
    let mut cluster = mixed_cluster(&corpus, addr, Duration::from_secs(10));
    let report = cluster.run_campaign(&corpus).expect("campaign survives the garbage");

    assert_eq!(report.errors, 0, "a scenario died with the garbage worker");
    assert_eq!(report.proved + report.refuted + report.unknown, corpus.len());
    assert!(
        metrics().cluster_malformed_responses_total.get() > malformed_before,
        "the garbage reply was never classified as malformed"
    );
    assert_eq!(cluster.workers_alive(), 1, "the garbage worker was not retired");
    cluster.shutdown();
}
