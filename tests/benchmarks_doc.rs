//! Gate: `docs/BENCHMARKS.md` stays in sync with the bench targets.
//!
//! Every file in `crates/bench/benches/` must be mentioned (by target
//! name, backtick-quoted) in the benchmarks catalog, and every `[[bench]]`
//! entry in the bench crate's manifest must have a source file. CI runs the
//! same check as a shell gate in the bench-smoke job; this test makes it
//! part of tier-1 so a new bench target cannot land undocumented.

use std::fs;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn every_bench_target_is_documented_in_benchmarks_md() {
    let doc = fs::read_to_string(repo_root().join("docs/BENCHMARKS.md"))
        .expect("docs/BENCHMARKS.md exists");
    let benches_dir = repo_root().join("crates/bench/benches");
    let mut missing = Vec::new();
    let mut count = 0usize;
    for entry in fs::read_dir(&benches_dir).expect("bench dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        count += 1;
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("utf8 stem").to_owned();
        // Require the backtick-quoted target name so the mention is a
        // deliberate catalog entry, not an incidental substring.
        if !doc.contains(&format!("`{stem}`")) {
            missing.push(stem);
        }
    }
    assert!(count > 0, "no bench targets found in {}", benches_dir.display());
    assert!(
        missing.is_empty(),
        "bench targets missing from docs/BENCHMARKS.md: {missing:?} — \
         add a catalog row (and, if the target tracks a hot path, a trajectory entry)"
    );
}

#[test]
fn every_manifest_bench_entry_has_a_source_file() {
    let manifest = fs::read_to_string(repo_root().join("crates/bench/Cargo.toml"))
        .expect("bench manifest exists");
    let mut declared = Vec::new();
    let mut lines = manifest.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim() == "[[bench]]" {
            for follow in lines.by_ref() {
                let follow = follow.trim();
                if let Some(name) = follow.strip_prefix("name = ") {
                    declared.push(name.trim_matches('"').to_owned());
                    break;
                }
                if follow.starts_with('[') {
                    break;
                }
            }
        }
    }
    assert!(!declared.is_empty(), "no [[bench]] entries parsed from the bench manifest");
    for name in &declared {
        let src = repo_root().join(format!("crates/bench/benches/{name}.rs"));
        assert!(src.exists(), "[[bench]] {name} has no source at {}", src.display());
    }
}
